"""Lexer tests."""

import pytest

from repro.frontend.diagnostics import DiagnosticEngine
from repro.frontend.lexer import Lexer, TokenKind, tokenize
from repro.frontend.source import SourceFile


def lex(text: str):
    diags = DiagnosticEngine()
    tokens = tokenize(SourceFile("t.mc", text), diags)
    return tokens, diags


def kinds(text: str):
    tokens, _ = lex(text)
    return [t.kind for t in tokens[:-1]]  # drop EOF


class TestBasicTokens:
    def test_empty_input_gives_eof(self):
        tokens, diags = lex("")
        assert [t.kind for t in tokens] == [TokenKind.EOF]
        assert not diags.has_errors

    def test_identifier(self):
        tokens, _ = lex("foo _bar baz42")
        assert [t.text for t in tokens[:-1]] == ["foo", "_bar", "baz42"]
        assert all(t.kind is TokenKind.IDENT for t in tokens[:-1])

    def test_keywords(self):
        assert kinds("int bool void if else while for return") == [
            TokenKind.KW_INT,
            TokenKind.KW_BOOL,
            TokenKind.KW_VOID,
            TokenKind.KW_IF,
            TokenKind.KW_ELSE,
            TokenKind.KW_WHILE,
            TokenKind.KW_FOR,
            TokenKind.KW_RETURN,
        ]

    def test_keyword_prefix_is_identifier(self):
        tokens, _ = lex("integer iffy")
        assert all(t.kind is TokenKind.IDENT for t in tokens[:-1])

    def test_decimal_literal(self):
        tokens, _ = lex("0 7 1234567890")
        assert [t.value for t in tokens[:-1]] == [0, 7, 1234567890]

    def test_hex_literal(self):
        tokens, _ = lex("0x10 0xfF 0X0")
        assert [t.value for t in tokens[:-1]] == [16, 255, 0]

    def test_bad_hex_reports_error(self):
        _, diags = lex("0x")
        assert diags.has_errors

    def test_string_literal(self):
        tokens, _ = lex('"hello.mh"')
        assert tokens[0].kind is TokenKind.STRING_LIT
        assert tokens[0].value == "hello.mh"

    def test_string_escapes(self):
        tokens, _ = lex(r'"a\nb\t\\\""')
        assert tokens[0].value == 'a\nb\t\\"'

    def test_unterminated_string(self):
        _, diags = lex('"oops')
        assert diags.has_errors


class TestOperators:
    def test_maximal_munch(self):
        assert kinds("<< <= < == = >= >> >") == [
            TokenKind.SHL,
            TokenKind.LE,
            TokenKind.LT,
            TokenKind.EQ,
            TokenKind.ASSIGN,
            TokenKind.GE,
            TokenKind.SHR,
            TokenKind.GT,
        ]

    def test_compound_assignment(self):
        assert kinds("+= -= *= /= %=") == [
            TokenKind.PLUS_ASSIGN,
            TokenKind.MINUS_ASSIGN,
            TokenKind.STAR_ASSIGN,
            TokenKind.SLASH_ASSIGN,
            TokenKind.PERCENT_ASSIGN,
        ]

    def test_incdec(self):
        assert kinds("++ -- + -") == [
            TokenKind.PLUS_PLUS,
            TokenKind.MINUS_MINUS,
            TokenKind.PLUS,
            TokenKind.MINUS,
        ]

    def test_logical_and_bitwise(self):
        assert kinds("&& & || | ^ ~ !") == [
            TokenKind.AMP_AMP,
            TokenKind.AMP,
            TokenKind.PIPE_PIPE,
            TokenKind.PIPE,
            TokenKind.CARET,
            TokenKind.TILDE,
            TokenKind.BANG,
        ]

    def test_punctuation(self):
        assert kinds("( ) { } [ ] ; , ? :") == [
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.LBRACKET,
            TokenKind.RBRACKET,
            TokenKind.SEMI,
            TokenKind.COMMA,
            TokenKind.QUESTION,
            TokenKind.COLON,
        ]


class TestTrivia:
    def test_line_comment(self):
        assert kinds("1 // comment with * and /\n2") == [TokenKind.INT_LIT, TokenKind.INT_LIT]

    def test_block_comment(self):
        assert kinds("1 /* multi\nline */ 2") == [TokenKind.INT_LIT, TokenKind.INT_LIT]

    def test_unterminated_block_comment(self):
        _, diags = lex("1 /* never ends")
        assert diags.has_errors

    def test_comment_at_eof(self):
        tokens, diags = lex("// only a comment")
        assert tokens[-1].kind is TokenKind.EOF
        assert not diags.has_errors

    def test_unknown_character_reported_and_skipped(self):
        tokens, diags = lex("1 $ 2")
        assert diags.has_errors
        assert [t.kind for t in tokens[:-1]] == [TokenKind.INT_LIT, TokenKind.INT_LIT]


class TestSpans:
    def test_token_spans_cover_text(self):
        text = "int x = 42;"
        tokens, _ = lex(text)
        for tok in tokens[:-1]:
            assert text[tok.span.start : tok.span.end] == tok.text

    def test_span_line_info(self):
        tokens, _ = lex("a\n  b")
        assert tokens[1].span.describe().endswith(":2:3")
