"""AST pretty-printer tests, including the parse∘print fixpoint property."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.frontend.parser import parse_source
from repro.frontend.printer import format_source, print_expr, print_program
from repro.workload.generator import generate_project
from repro.workload.spec import make_spec


def roundtrip_stable(src: str) -> str:
    """Assert print∘parse is a fixpoint; returns the canonical text."""
    once = format_source(src)
    twice = format_source(once)
    assert once == twice, f"formatter not idempotent:\n{once}\n---\n{twice}"
    return once


class TestExpressions:
    def expr_text(self, expr_src: str) -> str:
        program, _ = parse_source("t.mc", f"int main() {{ return {expr_src}; }}")
        return print_expr(program.functions[0].body.stmts[0].value)

    def test_precedence_no_redundant_parens(self):
        assert self.expr_text("1 + 2 * 3") == "1 + 2 * 3"
        assert self.expr_text("(1 + 2) * 3") == "(1 + 2) * 3"

    def test_left_associative_subtraction(self):
        assert self.expr_text("1 - 2 - 3") == "1 - 2 - 3"
        assert self.expr_text("1 - (2 - 3)") == "1 - (2 - 3)"

    def test_ternary(self):
        assert self.expr_text("a ? 1 : b ? 2 : 3") == "a ? 1 : b ? 2 : 3"

    def test_logical_chain(self):
        assert self.expr_text("a && b || c") == "a && b || c"
        assert self.expr_text("a && (b || c)") == "a && (b || c)"

    def test_call_and_index(self):
        assert self.expr_text("f(x, g(y))[2]") == "f(x, g(y))[2]"

    def test_incdec(self):
        assert self.expr_text("x++") == "x++"
        assert self.expr_text("--x") == "--x"

    def test_assignment(self):
        assert self.expr_text("a = b = 1") == "a = b = 1"
        assert self.expr_text("a += 2") == "a += 2"


class TestStatements:
    def test_full_program_canonical(self):
        src = """
        include "h.mh";
        const int N = 4;
        extern int shared;
        int table[8];
        int f(int a, int b[]);
        int main() { if (N > 2) { print(N); } else print(0); return 0; }
        """
        canonical = roundtrip_stable(src)
        assert 'include "h.mh";' in canonical
        assert "const int N = 4;" in canonical
        assert "extern int shared;" in canonical
        assert "int table[8];" in canonical
        assert "int f(int a, int b[]);" in canonical

    def test_dangling_else_safe(self):
        # Canonical form braces everything, so the printed text parses
        # back with the same else-binding.
        src = "int f(bool a, bool b) { if (a) if (b) return 1; else return 2; return 3; }"
        canonical = roundtrip_stable(src)
        program, _ = parse_source("t.mc", canonical)
        inner_if = program.functions[0].body.stmts[0].then
        # strip the synthetic braces
        from repro.frontend import ast as A

        while isinstance(inner_if, A.Block):
            inner_if = inner_if.stmts[0]
        assert inner_if.otherwise is not None

    def test_loops(self):
        src = """
        int f(int n) {
          int s = 0;
          for (int i = 0; i < n; ++i) s += i;
          while (s > 10) s /= 2;
          do s++; while (s < 3);
          for (;;) break;
          return s;
        }
        """
        canonical = roundtrip_stable(src)
        assert "for (int i = 0; i < n; ++i)" in canonical
        assert "do" in canonical and "while (s < 3);" in canonical
        assert "for (; ; )" in canonical


class TestPropertyFixpoint:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2000))
    def test_generated_projects_format_idempotently(self, seed):
        spec = make_spec("fmt", num_modules=1, functions_per_module=3, seed=seed)
        project = generate_project(spec)
        for path, text in project.files.items():
            roundtrip_stable(text)

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2000))
    def test_formatting_preserves_behaviour(self, seed):
        from repro.buildsys.incremental import IncrementalBuilder
        from repro.driver import CompilerOptions
        from repro.vm.machine import VirtualMachine
        from repro.workload.project import Project

        spec = make_spec("fmtb", num_modules=2, functions_per_module=2, seed=seed)
        project = generate_project(spec)
        formatted = Project(
            project.name, {p: format_source(t) for p, t in project.files.items()}
        )
        results = []
        for proj in (project, formatted):
            report = IncrementalBuilder(
                proj.provider(), proj.unit_paths, CompilerOptions(opt_level="O1")
            ).build()
            results.append(VirtualMachine(report.image).run())
        assert results[0].same_behaviour(results[1])
