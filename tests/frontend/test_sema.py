"""Semantic analysis tests."""

import pytest

from repro.frontend.diagnostics import CompileError
from repro.frontend.parser import parse_source
from repro.frontend.sema import analyze, eval_const_expr, wrap_int64, ConstEvalError
from repro.frontend.types import BOOL, FunctionType, INT, VOID


def sema_ok(src: str):
    program, _ = parse_source("t.mc", src)
    return analyze(program)


def sema_errors(src: str) -> list[str]:
    program, _ = parse_source("t.mc", src)
    try:
        analyze(program)
    except CompileError as exc:
        return [str(d) for d in exc.diagnostics]
    return []


class TestDeclarations:
    def test_simple_program(self):
        sema = sema_ok("int main() { return 0; }")
        assert sema.function_types["main"] == FunctionType((), INT)

    def test_undeclared_variable(self):
        assert any("undeclared" in e for e in sema_errors("int main() { return x; }"))

    def test_redeclaration_same_scope(self):
        errors = sema_errors("int main() { int x = 1; int x = 2; return x; }")
        assert any("redeclaration" in e for e in errors)

    def test_shadowing_in_nested_scope_ok(self):
        sema_ok("int main() { int x = 1; { int x = 2; } return x; }")

    def test_function_redefinition(self):
        errors = sema_errors("int f() { return 1; } int f() { return 2; }")
        assert any("redefinition" in e for e in errors)

    def test_declaration_then_definition_ok(self):
        sema_ok("int f(int x); int f(int x) { return x; }")

    def test_conflicting_signatures(self):
        errors = sema_errors("int f(int x); bool f(int x) { return true; }")
        assert any("conflicting" in e for e in errors)

    def test_duplicate_parameter(self):
        errors = sema_errors("int f(int a, int a) { return a; }")
        assert any("duplicate parameter" in e for e in errors)

    def test_builtin_shadowing_rejected(self):
        assert sema_errors("int print(int x) { return x; }")

    def test_void_variable_rejected(self):
        # Parser already rejects `void x`; use global path.
        program, _ = parse_source("t.mc", "extern void g;")
        with pytest.raises(CompileError):
            analyze(program)

    def test_main_signature_enforced(self):
        assert any("main" in e for e in sema_errors("int main(int argc) { return 0; }"))
        assert any("main" in e for e in sema_errors("void main() { }"))


class TestTypes:
    def test_condition_must_be_bool(self):
        assert any("bool" in e for e in sema_errors("int main() { if (1) return 0; return 1; }"))

    def test_arith_needs_int(self):
        assert sema_errors("int main() { bool b = true; return b + 1; }")

    def test_logical_needs_bool(self):
        assert sema_errors("int main() { return (1 && 2) ? 0 : 1; }")

    def test_comparison_mixed_types_rejected(self):
        assert sema_errors("int main() { bool b = 1 == true; return 0; }")

    def test_bool_equality_ok(self):
        sema_ok("int main() { bool b = (true == false); return b ? 1 : 0; }")

    def test_assign_type_mismatch(self):
        assert sema_errors("int main() { int x = true; return x; }")

    def test_return_type_mismatch(self):
        assert sema_errors("int main() { return true; }")

    def test_void_return_with_value(self):
        assert sema_errors("void f() { return 1; }")

    def test_nonvoid_return_without_value(self):
        assert sema_errors("int f() { return; }")

    def test_ternary_arm_types_must_match(self):
        assert sema_errors("int main() { return true ? 1 : false; }")

    def test_ternary_condition_bool(self):
        assert sema_errors("int main() { return 1 ? 2 : 3; }")


class TestArrays:
    def test_index_non_array(self):
        assert any("non-array" in e for e in sema_errors("int main() { int x = 0; return x[0]; }"))

    def test_index_must_be_int(self):
        assert sema_errors("int main() { int a[4]; return a[true]; }")

    def test_assign_whole_array_rejected(self):
        assert any("entire array" in e for e in sema_errors(
            "int main() { int a[4]; int b[4]; a = b; return 0; }"
        ))

    def test_array_size_positive(self):
        assert sema_errors("int main() { int a[0]; return 0; }")

    def test_array_initializer_rejected(self):
        assert sema_errors("int main() { int a[4] = 1; return 0; }")

    def test_array_argument_passing(self):
        sema_ok("int f(int a[]) { return a[0]; } int main() { int b[4]; return f(b); }")

    def test_scalar_to_array_param_rejected(self):
        assert any("must be an array" in e for e in sema_errors(
            "int f(int a[]) { return a[0]; } int main() { return f(5); }"
        ))


class TestCalls:
    def test_undeclared_function(self):
        assert any("undeclared function" in e for e in sema_errors("int main() { return g(); }"))

    def test_arity_mismatch(self):
        assert any("argument" in e for e in sema_errors(
            "int f(int a) { return a; } int main() { return f(1, 2); }"
        ))

    def test_argument_type_mismatch(self):
        assert sema_errors("int f(int a) { return a; } int main() { return f(true); }")

    def test_builtins_available(self):
        sema_ok("int main() { print(input()); return 0; }")

    def test_variable_called_as_function(self):
        assert sema_errors("int main() { int x = 1; return x(); }")

    def test_function_used_as_value(self):
        assert sema_errors("int f() { return 1; } int main() { return f; }")


class TestControlFlow:
    def test_break_outside_loop(self):
        assert any("break" in e for e in sema_errors("int main() { break; return 0; }"))

    def test_continue_outside_loop(self):
        assert any("continue" in e for e in sema_errors("int main() { continue; return 0; }"))

    def test_break_in_loop_ok(self):
        sema_ok("int main() { while (true) { break; } return 0; }")

    def test_missing_return_warns(self):
        sema = sema_ok("int f(int x) { if (x > 0) return 1; }")
        assert any("without returning" in str(d) for d in sema.diags.diagnostics)

    def test_all_paths_return_no_warning(self):
        sema = sema_ok("int f(int x) { if (x > 0) return 1; else return 2; }")
        assert not sema.diags.diagnostics


class TestGlobalsAndConsts:
    def test_global_init_must_be_constant(self):
        assert any("constant" in e for e in sema_errors(
            "int f() { return 1; } int g = f();"
        ))

    def test_const_global_requires_init(self):
        assert any("initializer" in e for e in sema_errors("extern int x; const int c;"))

    def test_const_folding_through_consts(self):
        sema = sema_ok("const int A = 3; const int B = A * 4 + 1;")
        b = [g for g in sema.global_scope.symbols.values() if getattr(g, "name", "") == "B"][0]
        assert b.const_value == 13

    def test_assign_to_const_rejected(self):
        assert any("const" in e for e in sema_errors(
            "const int N = 1; int main() { N = 2; return 0; }"
        ))

    def test_division_by_zero_in_const_rejected(self):
        assert sema_errors("const int X = 1 / 0;")

    def test_extern_then_definition_ok(self):
        sema_ok("extern int g; int g = 5; int main() { return g; }")


class TestConstEval:
    def test_wrap_int64(self):
        assert wrap_int64(2**63) == -(2**63)
        assert wrap_int64(-(2**63) - 1) == 2**63 - 1
        assert wrap_int64(42) == 42

    def test_truncating_division(self):
        program, _ = parse_source("t.mc", "const int A = (0-7) / 2; const int B = (0-7) % 2;")
        sema = analyze(program)
        values = {g.name: g.const_value for g in program.globals}
        assert values["A"] == -3  # C-style: trunc toward zero
        assert values["B"] == -1

    def test_shift_masking(self):
        program, _ = parse_source("t.mc", "const int A = 1 << 64;")
        analyze(program)
        assert program.globals[0].const_value == 1  # 64 & 63 == 0

    def test_non_constant_raises(self):
        program, _ = parse_source("t.mc", "int f(int x) { return x; }")
        analyze(program)
        body = program.functions[0].body
        with pytest.raises(ConstEvalError):
            eval_const_expr(body.stmts[0].value)
