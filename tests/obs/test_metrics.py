"""MetricsRegistry: counters, gauges, timings, merge, round-trip."""

import pytest

from repro.obs.metrics import MetricsRegistry


class TestCounters:
    def test_inc_and_count(self):
        metrics = MetricsRegistry()
        metrics.inc("passes.executed")
        metrics.inc("passes.executed", 4)
        assert metrics.count("passes.executed") == 5

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().count("nope") == 0

    def test_counter_is_get_or_create(self):
        metrics = MetricsRegistry()
        assert metrics.counter("a") is metrics.counter("a")


class TestGauges:
    def test_set_overwrites(self):
        metrics = MetricsRegistry()
        metrics.set_gauge("state.records", 10)
        metrics.set_gauge("state.records", 7)
        assert metrics.gauge("state.records").value == 7


class TestTimings:
    def test_observe_accumulates_summary(self):
        metrics = MetricsRegistry()
        for value in (0.2, 0.4, 0.6):
            metrics.observe("compile.frontend_time", value)
        timing = metrics.timing("compile.frontend_time")
        assert timing.count == 3
        assert timing.total == pytest.approx(1.2)
        assert timing.min == pytest.approx(0.2)
        assert timing.max == pytest.approx(0.6)
        assert timing.mean == pytest.approx(0.4)

    def test_empty_timing_mean_is_zero(self):
        assert MetricsRegistry().timing("t").mean == 0.0


class TestMerge:
    def test_merge_adds_counters_and_timings(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("passes.executed", 2)
        b.inc("passes.executed", 3)
        b.inc("passes.bypassed", 1)
        a.observe("t", 0.5)
        b.observe("t", 1.5)
        a.merge(b)
        assert a.count("passes.executed") == 5
        assert a.count("passes.bypassed") == 1
        assert a.timing("t").count == 2
        assert a.timing("t").total == pytest.approx(2.0)

    def test_merge_gauges_last_writer_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("g", 1)
        b.set_gauge("g", 9)
        a.merge(b)
        assert a.gauge("g").value == 9

    def test_merge_empty_is_identity(self):
        a = MetricsRegistry()
        a.inc("x")
        a.merge(MetricsRegistry())
        assert a.count("x") == 1


class TestSourceTags:
    """Tagged merges keep per-worker attribution alongside the totals."""

    def test_tagged_merge_duplicates_timings_under_source(self):
        driver, worker = MetricsRegistry(), MetricsRegistry()
        worker.observe("compile.frontend_time", 0.5)
        driver.merge(worker, source="pid-3")
        assert driver.timing("compile.frontend_time").total == pytest.approx(0.5)
        tagged = driver.timing("source.pid-3.compile.frontend_time")
        assert tagged.count == 1 and tagged.total == pytest.approx(0.5)

    def test_counters_and_gauges_are_not_source_duplicated(self):
        driver, worker = MetricsRegistry(), MetricsRegistry()
        worker.inc("passes.executed", 3)
        worker.set_gauge("g", 7)
        driver.merge(worker, source="pid-3")
        assert driver.count("passes.executed") == 3
        assert all(not n.startswith("source.") for n in driver.counters)
        assert all(not n.startswith("source.") for n in driver.gauges)

    def test_untagged_merge_adds_no_source_timings(self):
        driver, worker = MetricsRegistry(), MetricsRegistry()
        worker.observe("t", 1.0)
        driver.merge(worker)
        assert all(not n.startswith("source.") for n in driver.timings)

    def test_sources_strips_prefix_and_groups_by_tag(self):
        driver = MetricsRegistry()
        for tag, value in (("pid-1", 0.25), ("pid-2", 0.75)):
            worker = MetricsRegistry()
            worker.observe("compile.passes_time", value)
            driver.merge(worker, source=tag)
        breakdown = driver.sources()
        assert set(breakdown) == {"pid-1", "pid-2"}
        assert breakdown["pid-2"]["compile.passes_time"].total == pytest.approx(0.75)

    def test_sources_empty_without_tagged_merges(self):
        metrics = MetricsRegistry()
        metrics.observe("t", 1.0)
        assert metrics.sources() == {}

    def test_repeated_merges_from_one_source_accumulate(self):
        driver = MetricsRegistry()
        for value in (0.1, 0.3):
            worker = MetricsRegistry()
            worker.observe("t", value)
            driver.merge(worker, source="driver")
        tagged = driver.sources()["driver"]["t"]
        assert tagged.count == 2 and tagged.total == pytest.approx(0.4)


class TestSerialization:
    def test_round_trip(self):
        metrics = MetricsRegistry()
        metrics.inc("passes.executed", 7)
        metrics.set_gauge("build.jobs", 4)
        metrics.observe("compile.backend_time", 0.25)
        payload = metrics.to_dict()
        clone = MetricsRegistry.from_dict(payload)
        assert clone.to_dict() == payload

    def test_to_dict_sorts_names(self):
        metrics = MetricsRegistry()
        metrics.inc("zz")
        metrics.inc("aa")
        assert list(metrics.to_dict()["counters"]) == ["aa", "zz"]
