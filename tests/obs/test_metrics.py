"""MetricsRegistry: counters, gauges, timings, merge, round-trip."""

import pytest

from repro.obs.metrics import MetricsRegistry


class TestCounters:
    def test_inc_and_count(self):
        metrics = MetricsRegistry()
        metrics.inc("passes.executed")
        metrics.inc("passes.executed", 4)
        assert metrics.count("passes.executed") == 5

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().count("nope") == 0

    def test_counter_is_get_or_create(self):
        metrics = MetricsRegistry()
        assert metrics.counter("a") is metrics.counter("a")


class TestGauges:
    def test_set_overwrites(self):
        metrics = MetricsRegistry()
        metrics.set_gauge("state.records", 10)
        metrics.set_gauge("state.records", 7)
        assert metrics.gauge("state.records").value == 7


class TestTimings:
    def test_observe_accumulates_summary(self):
        metrics = MetricsRegistry()
        for value in (0.2, 0.4, 0.6):
            metrics.observe("compile.frontend_time", value)
        timing = metrics.timing("compile.frontend_time")
        assert timing.count == 3
        assert timing.total == pytest.approx(1.2)
        assert timing.min == pytest.approx(0.2)
        assert timing.max == pytest.approx(0.6)
        assert timing.mean == pytest.approx(0.4)

    def test_empty_timing_mean_is_zero(self):
        assert MetricsRegistry().timing("t").mean == 0.0


class TestMerge:
    def test_merge_adds_counters_and_timings(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("passes.executed", 2)
        b.inc("passes.executed", 3)
        b.inc("passes.bypassed", 1)
        a.observe("t", 0.5)
        b.observe("t", 1.5)
        a.merge(b)
        assert a.count("passes.executed") == 5
        assert a.count("passes.bypassed") == 1
        assert a.timing("t").count == 2
        assert a.timing("t").total == pytest.approx(2.0)

    def test_merge_gauges_last_writer_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("g", 1)
        b.set_gauge("g", 9)
        a.merge(b)
        assert a.gauge("g").value == 9

    def test_merge_empty_is_identity(self):
        a = MetricsRegistry()
        a.inc("x")
        a.merge(MetricsRegistry())
        assert a.count("x") == 1


class TestSerialization:
    def test_round_trip(self):
        metrics = MetricsRegistry()
        metrics.inc("passes.executed", 7)
        metrics.set_gauge("build.jobs", 4)
        metrics.observe("compile.backend_time", 0.25)
        payload = metrics.to_dict()
        clone = MetricsRegistry.from_dict(payload)
        assert clone.to_dict() == payload

    def test_to_dict_sorts_names(self):
        metrics = MetricsRegistry()
        metrics.inc("zz")
        metrics.inc("aa")
        assert list(metrics.to_dict()["counters"]) == ["aa", "zz"]
