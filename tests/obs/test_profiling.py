"""BuildProfiler / NULL_PROFILER behavior and pstats output format."""

import pstats

from repro.obs.profiling import (
    NULL_PROFILER,
    PROFILE_SCHEMA_VERSION,
    BuildProfiler,
    NullBuildProfiler,
    merge_stats_tables,
    profile_stats_table,
)


def busy_work(n: int = 200) -> int:
    return sum(i * i for i in range(n))


class TestNullProfiler:
    def test_disabled_and_inert(self, tmp_path):
        assert NULL_PROFILER.enabled is False
        with NULL_PROFILER.phase("compile"):
            busy_work()
        NULL_PROFILER.absorb("compile", {("f", 1, "g"): (1, 1, 0.1, 0.1)})
        assert NULL_PROFILER.write_pstats(tmp_path) == []
        assert NULL_PROFILER.hotspots() == []
        assert NULL_PROFILER.to_payload() == {}
        assert list(tmp_path.iterdir()) == []

    def test_real_profiler_substitutes_for_null(self):
        # The driver types its parameter as NullBuildProfiler; the real
        # one must remain a drop-in subclass.
        assert issubclass(BuildProfiler, NullBuildProfiler)
        assert BuildProfiler().enabled is True


class TestPhaseCollection:
    def test_phase_records_functions(self):
        profiler = BuildProfiler()
        with profiler.phase("compile"):
            busy_work()
        assert "compile" in profiler.phases
        table = profiler.phases["compile"]
        assert table
        for key, row in table.items():
            assert len(key) == 3 and len(row) == 4

    def test_phase_collects_even_when_body_raises(self):
        profiler = BuildProfiler()
        try:
            with profiler.phase("link"):
                busy_work()
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert profiler.phases["link"]

    def test_absorb_merges_worker_tables(self):
        profiler = BuildProfiler()
        key = ("worker.py", 10, "compile_unit")
        profiler.absorb("compile-workers", {key: (2, 3, 0.5, 0.7)})
        profiler.absorb("compile-workers", {key: (1, 1, 0.25, 0.3)})
        assert profiler.phases["compile-workers"][key] == (3, 4, 0.75, 1.0)

    def test_absorb_ignores_empty(self):
        profiler = BuildProfiler()
        profiler.absorb("compile-workers", None)
        profiler.absorb("compile-workers", {})
        assert profiler.phases == {}


class TestMergeStatsTables:
    def test_sums_all_four_columns(self):
        import pytest

        into = {("a", 1, "f"): (1, 2, 0.1, 0.2)}
        merge_stats_tables(into, {("a", 1, "f"): (3, 4, 0.3, 0.4), ("b", 2, "g"): (1, 1, 1.0, 1.0)})
        assert into[("a", 1, "f")] == pytest.approx((4, 6, 0.4, 0.6))
        assert into[("b", 2, "g")] == (1, 1, 1.0, 1.0)


class TestOutputs:
    def make_profiler(self) -> BuildProfiler:
        profiler = BuildProfiler()
        with profiler.phase("compile"):
            busy_work(500)
        with profiler.phase("link"):
            busy_work(50)
        return profiler

    def test_write_pstats_loadable_by_stdlib(self, tmp_path):
        paths = self.make_profiler().write_pstats(tmp_path)
        assert sorted(p.name for p in paths) == ["compile.pstats", "link.pstats"]
        for path in paths:
            stats = pstats.Stats(str(path))
            assert stats.total_calls > 0

    def test_pstats_filenames_are_sanitized(self, tmp_path):
        profiler = BuildProfiler()
        with profiler.phase("state/gc pass"):
            busy_work()
        (path,) = profiler.write_pstats(tmp_path)
        assert path.name == "state_gc_pass.pstats"

    def test_hotspots_ranked_by_own_time(self):
        profiler = self.make_profiler()
        spots = profiler.hotspots(top=5)
        assert 0 < len(spots) <= 5
        times = [s["tottime"] for s in spots]
        assert times == sorted(times, reverse=True)
        assert all({"function", "calls", "tottime", "cumtime"} <= set(s) for s in spots)

    def test_payload_shape(self):
        payload = self.make_profiler().to_payload(top=3)
        assert payload["schema"] == PROFILE_SCHEMA_VERSION
        assert set(payload["phases"]) == {"compile", "link"}
        for entry in payload["phases"].values():
            assert entry["functions"] > 0
            assert entry["calls"] > 0
            assert entry["tottime"] >= 0.0
        assert len(payload["hotspots"]) <= 3

    def test_profile_stats_table_strips_callers(self):
        import cProfile

        profile = cProfile.Profile()
        profile.enable()
        busy_work()
        profile.disable()
        table = profile_stats_table(profile)
        assert all(len(row) == 4 for row in table.values())
