"""BuildHistory durability: concurrency, torn lines, schema round-trip."""

import json
from concurrent.futures import ThreadPoolExecutor

from repro.obs.history import (
    HISTORY_SCHEMA_VERSION,
    BuildHistory,
    HistoryRecord,
    default_history_path,
)


def make_record(seq: int, **overrides) -> HistoryRecord:
    """A record with every schema field populated (nothing defaulted)."""
    fields = dict(
        seq=seq,
        timestamp=1_700_000_000.0 + seq,
        label=f"build-{seq}",
        report={
            "schema": 2,
            "summary": {
                "recompiled": 3,
                "up_to_date": 2,
                "total_wall_time": 0.5,
                "state_records": 100 + seq,
            },
            "bypass": {"executions": 40, "bypassed": 60},
            "metrics": {"timings": {"pass.dce.time": {"total": 0.01}}},
        },
        state={
            "records": 100 + seq,
            "bytes": 5000 + seq,
            "gc_runs": seq,
            "gc_reclaimed_total": 7,
            "gc_reclaimed_last": 2,
        },
        passes={
            "dce": {"executed": 5, "dormant": 1, "bypassed": 9, "work": 42, "wall": 0.01}
        },
        profile={"schema": 1, "phases": {"compile": {"tottime": 0.1}}, "hotspots": []},
    )
    fields.update(overrides)
    return HistoryRecord(**fields)


class TestRoundTrip:
    def test_every_field_survives_append_and_read(self, tmp_path):
        history = BuildHistory(tmp_path / "h.jsonl")
        original = make_record(1)
        history.append(original)
        records, stats = history.read()
        assert stats.loaded == 1 and not stats.truncated and stats.corrupt == 0
        assert records[0].to_dict() == original.to_dict()

    def test_derived_views(self, tmp_path):
        record = make_record(1)
        assert record.recompiled == 3
        assert record.up_to_date == 2
        assert record.total_wall_time == 0.5
        assert record.bypass_rate == 0.6
        assert record.state_records == 101
        assert record.state_bytes == 5001
        assert record.gc_reclaimed == 2

    def test_next_seq_continues_the_sequence(self, tmp_path):
        history = BuildHistory(tmp_path / "h.jsonl")
        assert history.next_seq() == 1
        history.append(make_record(1))
        history.append(make_record(2))
        assert history.next_seq() == 3

    def test_next_seq_without_index(self, tmp_path):
        history = BuildHistory(tmp_path / "h.jsonl")
        history.append(make_record(1))
        history.index_path.unlink()
        assert history.next_seq() == 2

    def test_default_history_path_rides_beside_db(self):
        assert str(default_history_path("build.reprodb")).endswith(
            "build.reprodb.history.jsonl"
        )


class TestTornLines:
    def test_truncated_final_line_is_dropped_not_fatal(self, tmp_path):
        history = BuildHistory(tmp_path / "h.jsonl")
        history.append(make_record(1))
        history.append(make_record(2))
        # A build killed mid-append leaves a partial line with no newline.
        with open(history.path, "ab") as handle:
            handle.write(b'{"schema": 1, "seq": 3, "timest')
        records, stats = history.read()
        assert [r.seq for r in records] == [1, 2]
        assert stats.truncated
        assert stats.corrupt == 0

    def test_corrupt_middle_line_is_counted_not_recovered(self, tmp_path):
        history = BuildHistory(tmp_path / "h.jsonl")
        history.append(make_record(1))
        with open(history.path, "ab") as handle:
            handle.write(b"not json at all\n")
        history.append(make_record(2))
        records, stats = history.read()
        assert [r.seq for r in records] == [1, 2]
        assert stats.corrupt == 1
        assert not stats.truncated

    def test_newer_schema_records_are_skipped_and_counted(self, tmp_path):
        history = BuildHistory(tmp_path / "h.jsonl")
        history.append(make_record(1))
        alien = make_record(2).to_dict()
        alien["schema"] = HISTORY_SCHEMA_VERSION + 41
        with open(history.path, "ab") as handle:
            handle.write(json.dumps(alien).encode() + b"\n")
        records, stats = history.read()
        assert [r.seq for r in records] == [1]
        assert stats.newer_schema == 1
        assert stats.corrupt == 0

    def test_missing_file_reads_empty(self, tmp_path):
        records, stats = BuildHistory(tmp_path / "absent.jsonl").read()
        assert records == [] and stats.lines == 0


class TestConcurrency:
    def test_concurrent_appends_never_interleave(self, tmp_path):
        """-j N builds sharing one history: whole lines, all present."""
        history = BuildHistory(tmp_path / "h.jsonl")

        def append_many(base: int) -> None:
            for k in range(25):
                history.append(make_record(base * 100 + k))

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(append_many, range(4)))

        records, stats = history.read()
        assert stats.corrupt == 0 and not stats.truncated
        assert len(records) == 100
        assert sorted(r.seq for r in records) == sorted(
            base * 100 + k for base in range(4) for k in range(25)
        )


class TestIndex:
    def test_tail_uses_index_and_matches_full_read(self, tmp_path):
        history = BuildHistory(tmp_path / "h.jsonl")
        for seq in range(1, 11):
            history.append(make_record(seq))
        assert [r.seq for r in history.tail(3)] == [8, 9, 10]

    def test_tail_survives_missing_index(self, tmp_path):
        history = BuildHistory(tmp_path / "h.jsonl")
        for seq in range(1, 6):
            history.append(make_record(seq))
        history.index_path.unlink()
        assert [r.seq for r in history.tail(2)] == [4, 5]

    def test_stale_index_is_ignored(self, tmp_path):
        """An index that disagrees with the file is a cache miss, not truth."""
        history = BuildHistory(tmp_path / "h.jsonl")
        history.append(make_record(1))
        history.index_path.write_text(
            json.dumps({"schema": HISTORY_SCHEMA_VERSION, "entries": [[9, 0, 1, 0.0]]})
        )
        assert [r.seq for r in history.tail(5)] == [1]

    def test_corrupt_index_is_ignored(self, tmp_path):
        history = BuildHistory(tmp_path / "h.jsonl")
        history.append(make_record(1))
        history.index_path.write_text("garbage")
        assert [r.seq for r in history.tail(1)] == [1]
        assert history.next_seq() == 2

    def test_index_rebuilt_after_external_append(self, tmp_path):
        """A writer that bypassed the index (crash before refresh) only
        costs a rescan; the next append repairs the sidecar."""
        history = BuildHistory(tmp_path / "h.jsonl")
        history.append(make_record(1))
        with open(history.path, "ab") as handle:
            line = json.dumps(make_record(2).to_dict(), separators=(",", ":"))
            handle.write(line.encode() + b"\n")
        history.append(make_record(3))
        assert [r.seq for r in history.tail(3)] == [1, 2, 3]
