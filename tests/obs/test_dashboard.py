"""Dashboard rendering: structure, self-containment, content."""

from html.parser import HTMLParser

from repro.obs.dashboard import render_dashboard
from repro.obs.drift import DriftFinding, DriftReport
from repro.obs.history import HistoryRecord

VOID_TAGS = {"meta", "br", "hr", "img", "input", "link", "circle", "line"}


class StructureChecker(HTMLParser):
    """Balanced-tag + external-reference audit of the rendered page."""

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack: list[str] = []
        self.errors: list[str] = []
        self.external: list[str] = []
        self.tags_seen: set[str] = set()

    def handle_starttag(self, tag, attrs):
        self.tags_seen.add(tag)
        for name, value in attrs:
            if name in ("src", "href") and value and "://" in value:
                self.external.append(f"{tag} {name}={value}")
        if tag not in VOID_TAGS:
            self.stack.append(tag)

    def handle_startendtag(self, tag, attrs):
        self.tags_seen.add(tag)

    def handle_endtag(self, tag):
        if tag in VOID_TAGS:
            return
        if not self.stack:
            self.errors.append(f"unopened </{tag}>")
        elif self.stack[-1] != tag:
            self.errors.append(f"expected </{self.stack[-1]}>, got </{tag}>")
        else:
            self.stack.pop()


def check_structure(html_text: str) -> StructureChecker:
    checker = StructureChecker()
    checker.feed(html_text)
    checker.close()
    assert not checker.errors, checker.errors
    assert not checker.stack, f"unclosed tags: {checker.stack}"
    return checker


def make_record(seq: int, *, passes=None, timings=None, profile=None) -> HistoryRecord:
    return HistoryRecord(
        seq=seq,
        timestamp=1_700_000_000.0 + seq * 60,
        label="clean" if seq == 1 else f"edit-{seq - 1}",
        report={
            "schema": 2,
            "summary": {
                "recompiled": 5 if seq == 1 else 2,
                "up_to_date": 0 if seq == 1 else 3,
                "total_wall_time": 0.8 - seq * 0.05,
                "jobs": 2,
            },
            "bypass": {"executions": 40, "bypassed": 0 if seq == 1 else 60},
            "metrics": {"timings": timings or {}},
        },
        state={"records": 100 + seq * 5, "bytes": 40_000 + seq * 500},
        passes=passes
        or {"dce": {"executed": 4, "bypassed": 6, "wall": 0.004 * seq},
            "mem2reg": {"executed": 2, "bypassed": 8, "wall": 0.002}},
        profile=profile or {},
    )


def trace(n: int = 6) -> list[HistoryRecord]:
    return [make_record(seq) for seq in range(1, n + 1)]


class TestStructure:
    def test_balanced_tags_and_expected_sections(self):
        page = render_dashboard(trace())
        checker = check_structure(page)
        assert {"svg", "table", "polyline", "polygon"} <= checker.tags_seen

    def test_self_contained_no_external_references(self):
        page = render_dashboard(trace())
        checker = check_structure(page)
        assert checker.external == []
        assert "http://" not in page and "https://" not in page
        assert "@import" not in page
        assert "<script" not in page

    def test_empty_history_renders_a_valid_stub(self):
        page = render_dashboard([])
        check_structure(page)
        assert "history is empty" in page


class TestContent:
    def test_title_and_labels_are_escaped(self):
        page = render_dashboard(trace(2), title="<b>evil & co</b>")
        assert "<b>evil" not in page
        assert "&lt;b&gt;evil &amp; co&lt;/b&gt;" in page

    def test_heat_table_lists_every_pass(self):
        page = render_dashboard(trace())
        assert "dce" in page and "mem2reg" in page
        assert "#cde2fb" in page or "#104281" in page  # ramp actually applied

    def test_records_sorted_by_seq_not_input_order(self):
        page = render_dashboard(list(reversed(trace(4))))
        assert "builds, #1 to #4" in page

    def test_worker_breakdown_from_source_timings(self):
        records = trace(3)
        records[-1] = make_record(
            3,
            timings={
                "source.driver.compile.frontend_time": {"total": 0.2},
                "source.pid-1.compile.passes_time": {"total": 0.5},
                "compile.frontend_time": {"total": 0.7},  # untagged: ignored
            },
        )
        page = render_dashboard(records)
        assert "Compile wall by worker" in page
        assert "pid-1" in page and "driver" in page

    def test_no_worker_section_without_source_timings(self):
        assert "Compile wall by worker" not in render_dashboard(trace())

    def test_profile_hotspots_table(self):
        records = trace(2)
        records[-1] = make_record(
            2,
            profile={
                "schema": 1,
                "phases": {},
                "hotspots": [
                    {"function": "manager.py:127(_run)", "calls": 9,
                     "tottime": 0.12, "cumtime": 0.3},
                ],
            },
        )
        page = render_dashboard(records)
        assert "Profile hotspots" in page
        assert "manager.py:127(_run)" in page


class TestDrift:
    def test_clean_drift_badge(self):
        page = render_dashboard(
            trace(), drift=DriftReport(findings=[], builds_analyzed=6)
        )
        check_structure(page)
        assert "no drift across 6 builds" in page

    def test_findings_render_with_badge_and_message(self):
        finding = DriftFinding(
            kind="bypass-rate", metric="bypass_rate", baseline=0.6,
            current=0.2, message="bypass rate fell to 20.0%", seq=6,
        )
        page = render_dashboard(
            trace(), drift=DriftReport(findings=[finding], builds_analyzed=6)
        )
        check_structure(page)
        assert "bypass-rate" in page
        assert "bypass rate fell to 20.0%" in page

    def test_no_drift_section_when_not_supplied(self):
        assert "<h2>Drift</h2>" not in render_dashboard(trace())
