"""Logging helper: namespace, level resolution, idempotent setup."""

import io
import logging

from repro.obs.logging import get_logger, resolve_level, setup_logging

_FLAG = "_repro_obs_handler"


def _teardown():
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, _FLAG, False):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)


class TestGetLogger:
    def test_bare_suffix_lands_under_repro(self):
        assert get_logger("buildsys").name == "repro.buildsys"

    def test_full_module_path_kept(self):
        assert get_logger("repro.core.state").name == "repro.core.state"

    def test_root_name_kept(self):
        assert get_logger("repro").name == "repro"


class TestResolveLevel:
    def test_default_is_warning(self):
        assert resolve_level(0, env="") == logging.WARNING

    def test_verbosity_steps(self):
        assert resolve_level(1, env="") == logging.INFO
        assert resolve_level(2, env="") == logging.DEBUG
        assert resolve_level(5, env="") == logging.DEBUG

    def test_env_overrides_when_more_verbose(self):
        assert resolve_level(0, env="debug") == logging.DEBUG
        assert resolve_level(0, env="info") == logging.INFO

    def test_more_verbose_side_wins(self):
        assert resolve_level(2, env="info") == logging.DEBUG
        assert resolve_level(1, env="debug") == logging.DEBUG

    def test_garbage_env_ignored(self):
        assert resolve_level(0, env="shouty") == logging.WARNING


class TestSetupLogging:
    def test_installs_one_handler_idempotently(self):
        try:
            setup_logging(1, env="")
            setup_logging(2, env="")
            root = logging.getLogger("repro")
            ours = [h for h in root.handlers if getattr(h, _FLAG, False)]
            assert len(ours) == 1
            assert root.level == logging.DEBUG  # the later, louder call won
        finally:
            _teardown()

    def test_module_loggers_reach_the_stream(self):
        stream = io.StringIO()
        try:
            setup_logging(2, env="", stream=stream)
            logging.getLogger("repro.buildsys.incremental").debug("scanned %d", 3)
            assert "repro.buildsys.incremental: scanned 3" in stream.getvalue()
        finally:
            _teardown()

    def test_quiet_by_default(self):
        stream = io.StringIO()
        try:
            setup_logging(0, env="", stream=stream)
            logging.getLogger("repro.core.state").info("chatty")
            assert stream.getvalue() == ""
        finally:
            _teardown()
