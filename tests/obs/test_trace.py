"""Tracer spans, the null tracer, and the Chrome trace_event exporter."""

import json
import time

from repro.obs.trace import (
    DRIVER_TRACK,
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    chrome_trace_events,
)


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert not tracer.enabled
        with tracer.span("anything", "phase"):
            pass
        tracer.add("x", "phase", 0.0, 1.0)
        tracer.absorb([SpanRecord("x", "phase", 0.0, 1.0)], 0.0, track="w")
        assert tracer.spans == []

    def test_singleton_is_shared(self):
        assert NULL_TRACER.spans == []
        NULL_TRACER.add("x", "phase", 0.0, 1.0)
        assert NULL_TRACER.spans == []


class TestTracer:
    def test_span_context_manager_records(self):
        tracer = Tracer()
        assert tracer.enabled
        with tracer.span("scan", "phase", units=3):
            time.sleep(0.001)
        (span,) = tracer.spans
        assert span.name == "scan" and span.category == "phase"
        assert span.duration >= 0.001
        assert span.args == {"units": 3}
        assert span.track == DRIVER_TRACK

    def test_add_rebases_onto_epoch(self):
        tracer = Tracer()
        start = time.perf_counter()
        tracer.add("unit", "unit", start, 0.5)
        (span,) = tracer.spans
        # Start was "now", i.e. almost exactly at the epoch distance.
        assert 0.0 <= span.start < 5.0
        assert span.duration == 0.5

    def test_nesting_encloses(self):
        tracer = Tracer()
        with tracer.span("outer", "phase"):
            with tracer.span("inner", "pass"):
                pass
        inner, outer = tracer.spans  # inner exits (and records) first
        assert outer.name == "outer"
        assert outer.encloses(inner)
        assert not inner.encloses(outer)

    def test_absorb_rebases_worker_spans(self):
        driver = Tracer()
        worker = Tracer(track="w1")
        with worker.span("unit.mc", "unit"):
            time.sleep(0.001)
        driver.absorb(worker.spans, worker.epoch_wall, track="pid-7")
        (span,) = driver.spans
        assert span.track == "pid-7"
        # Worker started after the driver, so the re-based start is
        # positive on the driver timeline.
        assert span.start >= 0.0
        assert span.duration >= 0.001


class TestChromeExport:
    def test_export_structure(self, tmp_path):
        tracer = Tracer()
        with tracer.span("build", "build"):
            with tracer.span("compile", "phase"):
                pass
        tracer.absorb(
            [SpanRecord("unit.mc", "unit", 0.0, 0.25)], tracer.epoch_wall, track="w0"
        )
        out = tmp_path / "trace.json"
        tracer.write(out)

        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"build", "compile", "unit.mc"}
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["pid"] == 1
        tracks = {e["args"]["name"]: e["tid"] for e in meta}
        assert set(tracks) == {DRIVER_TRACK, "w0"}
        # Every complete event lands on a named track.
        assert {e["tid"] for e in complete} <= set(tracks.values())

    def test_track_tids_assigned_in_first_seen_order(self):
        spans = [
            SpanRecord("a", "unit", 0.0, 1.0, track="driver"),
            SpanRecord("b", "unit", 0.0, 1.0, track="w1"),
            SpanRecord("c", "unit", 0.0, 1.0, track="w2"),
            SpanRecord("d", "unit", 2.0, 1.0, track="w1"),
        ]
        events = chrome_trace_events(spans)
        tids = {e["args"]["name"]: e["tid"] for e in events if e["ph"] == "M"}
        assert tids == {"driver": 1, "w1": 2, "w2": 3}

    def test_negative_start_clamped(self):
        events = chrome_trace_events([SpanRecord("early", "unit", -0.5, 1.0)])
        (event,) = [e for e in events if e["ph"] == "X"]
        assert event["ts"] == 0
