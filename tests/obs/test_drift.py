"""Drift detectors over synthetic build histories."""

from repro.obs.drift import DriftConfig, detect_drift
from repro.obs.history import HistoryRecord


def make_record(
    seq: int,
    *,
    bypass_rate: float = 0.6,
    recompiled: int = 4,
    passes: dict | None = None,
    state_bytes: int = 50_000,
    state_records: int = 120,
    gc_reclaimed: int = 3,
) -> HistoryRecord:
    bypassed = int(round(bypass_rate * 100))
    return HistoryRecord(
        seq=seq,
        timestamp=1_700_000_000.0 + seq,
        label=None,
        report={
            "schema": 2,
            "summary": {"recompiled": recompiled, "up_to_date": 0},
            "bypass": {"executions": 100 - bypassed, "bypassed": bypassed},
        },
        state={
            "records": state_records,
            "bytes": state_bytes,
            "gc_reclaimed_last": gc_reclaimed,
        },
        passes=passes or {},
    )


def trace(n: int, **kwargs) -> list[HistoryRecord]:
    """A clean-build-then-incremental trace of n builds, all alike."""
    return [make_record(1, bypass_rate=0.0)] + [
        make_record(seq, **kwargs) for seq in range(2, n + 1)
    ]


def kinds(report) -> list[str]:
    return [finding.kind for finding in report.findings]


class TestCleanTrace:
    def test_steady_history_is_quiet(self):
        report = detect_drift(trace(8))
        assert report.clean
        assert report.builds_analyzed == 8
        assert "no drift" in report.describe()

    def test_order_independent(self):
        records = trace(8)
        assert detect_drift(list(reversed(records))).clean

    def test_empty_and_tiny_histories_are_quiet(self):
        assert detect_drift([]).clean
        assert detect_drift(trace(3)).clean


class TestBypassRate:
    def test_drop_beyond_threshold_is_flagged(self):
        records = trace(8)
        records[-1] = make_record(8, bypass_rate=0.2)
        report = detect_drift(records)
        assert kinds(report) == ["bypass-rate"]
        finding = report.findings[0]
        assert finding.seq == 8
        assert finding.baseline - finding.current > 0.15
        assert "bypass rate fell" in finding.message

    def test_small_drop_stays_quiet(self):
        records = trace(8)
        records[-1] = make_record(8, bypass_rate=0.5)  # -0.10 < 0.15
        assert detect_drift(records).clean

    def test_one_bad_build_does_not_poison_the_baseline(self):
        """Median baseline: a single earlier outlier neither triggers
        (it isn't latest) nor drags the baseline down."""
        records = trace(9)
        records[4] = make_record(5, bypass_rate=0.1)
        assert detect_drift(records).clean
        records[-1] = make_record(9, bypass_rate=0.2)
        assert kinds(detect_drift(records)) == ["bypass-rate"]

    def test_needs_min_builds_of_history(self):
        records = trace(4)  # only 3 comparable builds: below min_builds + 1
        records[-1] = make_record(4, bypass_rate=0.0)
        assert detect_drift(records).clean

    def test_noop_builds_are_not_comparable(self):
        """recompiled == 0 builds carry no dormancy signal either way."""
        records = trace(8)
        records += [make_record(9, bypass_rate=0.0, recompiled=0)]
        assert detect_drift(records).clean


class TestPassWall:
    @staticmethod
    def passes(ms_per_run: float, executed: int = 10) -> dict:
        return {"dce": {"executed": executed, "wall": ms_per_run * 1e-3 * executed}}

    def test_slowdown_beyond_factor_and_floor_is_flagged(self):
        records = trace(8, passes=self.passes(5.0))
        records[-1] = make_record(8, passes=self.passes(25.0))
        report = detect_drift(records)
        assert kinds(report) == ["pass-wall"]
        finding = report.findings[0]
        assert finding.metric == "pass.dce.time"
        assert "5.0x" in finding.message

    def test_subfloor_jitter_is_quiet_despite_large_factor(self):
        """0.1 ms -> 0.5 ms is 5x but under the 2 ms absolute floor."""
        records = trace(8, passes=self.passes(0.1))
        records[-1] = make_record(8, passes=self.passes(0.5))
        assert detect_drift(records).clean

    def test_below_factor_is_quiet_despite_absolute_delta(self):
        records = trace(8, passes=self.passes(10.0))
        records[-1] = make_record(8, passes=self.passes(15.0))  # 1.5x < 2.0x
        assert detect_drift(records).clean

    def test_new_pass_without_baseline_is_quiet(self):
        records = trace(8)
        records[-1] = make_record(8, passes=self.passes(50.0))
        assert detect_drift(records).clean


class TestStateGrowth:
    @staticmethod
    def growing(n: int, *, start: int = 10_000, step: int = 2_000, gc: int = 0):
        return [
            make_record(
                seq,
                bypass_rate=0.0 if seq == 1 else 0.6,
                state_bytes=start + (seq - 1) * step,
                gc_reclaimed=gc,
            )
            for seq in range(1, n + 1)
        ]

    def test_monotone_growth_with_dead_gc_is_flagged(self):
        report = detect_drift(self.growing(8))
        assert kinds(report) == ["state-growth"]
        finding = report.findings[0]
        assert finding.current > finding.baseline * 1.5
        assert "GC" in finding.message

    def test_quiet_when_gc_reclaims_anything(self):
        assert detect_drift(self.growing(8, gc=1)).clean

    def test_quiet_when_growth_is_modest(self):
        # Strictly growing and zero reclaim, but < 1.5x end-to-end.
        assert detect_drift(self.growing(8, start=100_000, step=500)).clean

    def test_quiet_when_growth_plateaus(self):
        records = self.growing(8)
        records[-1] = make_record(8, state_bytes=records[-2].state_bytes)
        assert detect_drift(records).clean

    def test_needs_full_window(self):
        assert detect_drift(self.growing(5)).clean


class TestConfig:
    def test_thresholds_are_tunable(self):
        records = trace(8)
        records[-1] = make_record(8, bypass_rate=0.5)
        strict = DriftConfig(bypass_drop=0.05)
        assert kinds(detect_drift(records, strict)) == ["bypass-rate"]

    def test_findings_serialize(self):
        records = trace(8)
        records[-1] = make_record(8, bypass_rate=0.1)
        payload = detect_drift(records).findings[0].to_dict()
        assert payload["kind"] == "bypass-rate"
        assert set(payload) == {
            "kind", "metric", "baseline", "current", "message", "seq",
        }
