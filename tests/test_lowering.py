"""Lowering tests: behaviour of every language construct via the interpreter."""

import pytest

from repro.ir import Opcode, print_module
from tests.conftest import execute, lower


def run_main(body: str, headers=None, decls: str = "", **kwargs):
    src = f"{decls}\nint main() {{ {body} }}"
    return execute(src, headers, **kwargs)


class TestExpressions:
    def test_arithmetic(self):
        assert run_main("return 2 + 3 * 4 - 1;").exit_code == 13

    def test_division_truncation(self):
        assert run_main("return (0 - 7) / 2;").exit_code == -3
        assert run_main("return (0 - 7) % 2;").exit_code == -1

    def test_division_by_zero_traps(self):
        res = run_main("int z = 0; return 1 / z;")
        assert res.trapped and "zero" in res.trap_message

    def test_bitwise(self):
        assert run_main("return (12 & 10) | (1 << 4) ^ 3;").exit_code == (12 & 10) | (1 << 4) ^ 3

    def test_unary(self):
        assert run_main("int x = 5; return -x;").exit_code == -5
        assert run_main("return ~0;").exit_code == -1
        assert run_main("bool b = !false; return b ? 1 : 0;").exit_code == 1

    def test_comparisons_and_logic(self):
        assert run_main("return (1 < 2 && 3 >= 3) ? 7 : 8;").exit_code == 7
        assert run_main("return (1 > 2 || 2 == 2) ? 7 : 8;").exit_code == 7

    def test_short_circuit_skips_side_effects(self):
        decls = "int count = 0;\nbool bump() { count = count + 1; return true; }"
        res = run_main("bool x = false && bump(); print(count); return 0;", decls=decls)
        assert res.output == [0]
        res = run_main("bool x = true || bump(); print(count); return 0;", decls=decls)
        assert res.output == [0]
        res = run_main("bool x = true && bump(); print(count); return 0;", decls=decls)
        assert res.output == [1]

    def test_ternary(self):
        assert run_main("int x = 3; return x > 2 ? x * 10 : x;").exit_code == 30

    def test_assignment_is_expression(self):
        assert run_main("int a; int b = (a = 5); return a + b;").exit_code == 10

    def test_compound_assignment(self):
        assert run_main("int x = 10; x += 5; x -= 2; x *= 3; x /= 4; x %= 7; return x;").exit_code == ((((10 + 5) - 2) * 3) // 4) % 7

    def test_incdec_prefix_vs_postfix(self):
        assert run_main("int x = 5; int a = x++; return a * 100 + x;").exit_code == 506
        assert run_main("int x = 5; int a = ++x; return a * 100 + x;").exit_code == 606
        assert run_main("int x = 5; int a = x--; return a * 100 + x;").exit_code == 504

    def test_wrapping_arithmetic(self):
        # 2^62 * 4 wraps to 0.
        assert run_main("int big = 1 << 62; return big * 4;").exit_code == 0


class TestControlFlow:
    def test_if_else_chain(self):
        body = """
          int x = 7;
          if (x < 5) return 1;
          else if (x < 10) return 2;
          else return 3;
        """
        assert run_main(body).exit_code == 2

    def test_while_loop(self):
        assert run_main("int i = 0; int s = 0; while (i < 5) { s += i; i++; } return s;").exit_code == 10

    def test_do_while_runs_once(self):
        assert run_main("int i = 0; do { i++; } while (false); return i;").exit_code == 1

    def test_for_loop(self):
        assert run_main("int s = 0; for (int i = 1; i <= 4; ++i) s += i; return s;").exit_code == 10

    def test_break(self):
        assert run_main("int i = 0; while (true) { if (i == 3) break; i++; } return i;").exit_code == 3

    def test_continue(self):
        body = "int s = 0; for (int i = 0; i < 6; ++i) { if (i % 2 == 0) continue; s += i; } return s;"
        assert run_main(body).exit_code == 9

    def test_nested_loop_break_inner_only(self):
        body = """
          int hits = 0;
          for (int i = 0; i < 3; ++i) {
            for (int j = 0; j < 10; ++j) {
              if (j == 2) break;
              hits++;
            }
          }
          return hits;
        """
        assert run_main(body).exit_code == 6

    def test_early_return_in_both_branches(self):
        assert run_main("if (1 < 2) { return 5; } else { return 6; }").exit_code == 5

    def test_fallthrough_returns_zero(self):
        assert run_main("int x = 1;").exit_code == 0

    def test_unreachable_code_after_return_dropped(self):
        module = lower("int f() { return 1; print(99); return 2; }\nint main() { return f(); }")
        # the dead print must not appear
        assert "99" not in print_module(module)


class TestArraysAndGlobals:
    def test_array_read_write(self):
        body = """
          int a[4];
          for (int i = 0; i < 4; ++i) a[i] = i * i;
          return a[0] + a[1] + a[2] + a[3];
        """
        assert run_main(body).exit_code == 14

    def test_array_out_of_bounds_traps(self):
        res = run_main("int a[2]; int i = 100000; a[i] = 1; return 0;")
        assert res.trapped

    def test_array_passed_by_reference(self):
        decls = "void fill(int a[], int n) { for (int i = 0; i < n; ++i) a[i] = 7; }"
        assert run_main("int b[3]; fill(b, 3); return b[2];", decls=decls).exit_code == 7

    def test_global_scalar(self):
        decls = "int g = 10;\nvoid bump() { g = g + 1; }"
        assert run_main("bump(); bump(); return g;", decls=decls).exit_code == 12

    def test_global_array(self):
        decls = "int table[4];"
        assert run_main("table[2] = 9; return table[2];", decls=decls).exit_code == 9

    def test_const_global_folded_to_literal(self):
        module = lower("const int N = 42;\nint main() { return N; }")
        assert "N" not in module.globals
        assert "42" in print_module(module)

    def test_extern_global_via_header(self):
        headers = {"h.mh": "extern int shared;\n"}
        src = 'include "h.mh";\nint shared = 5;\nint main() { return shared; }'
        assert execute(src, headers).exit_code == 5

    def test_bool_variables(self):
        body = "bool a = true; bool b = a == false; return b ? 1 : 2;"
        assert run_main(body).exit_code == 2


class TestFunctions:
    def test_recursion(self):
        decls = "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }"
        assert run_main("return fact(6);", decls=decls).exit_code == 720

    def test_mutual_recursion(self):
        decls = """
          bool is_odd(int n);
          bool is_even(int n) { if (n == 0) return true; return is_odd(n - 1); }
          bool is_odd(int n) { if (n == 0) return false; return is_even(n - 1); }
        """
        assert run_main("return is_even(10) ? 1 : 0;", decls=decls).exit_code == 1

    def test_void_function(self):
        decls = "int acc = 0;\nvoid add(int x) { acc += x; }"
        assert run_main("add(3); add(4); return acc;", decls=decls).exit_code == 7

    def test_bool_params_and_return(self):
        decls = "bool flip(bool b) { return !b; }"
        assert run_main("return flip(false) ? 1 : 0;", decls=decls).exit_code == 1

    def test_print_and_input(self):
        res = run_main("print(input() + input()); return 0;", input_values=[3, 4])
        assert res.output == [7]

    def test_input_exhausted_traps(self):
        res = run_main("return input();", input_values=[])
        assert res.trapped

    def test_stack_overflow_traps(self):
        decls = "int inf(int n) { return inf(n + 1); }"
        res = run_main("return inf(0);", decls=decls)
        assert res.trapped and "overflow" in res.trap_message


class TestLoweringShape:
    def test_locals_become_allocas(self):
        module = lower("int f(int x) { int y = x; return y; }")
        opcodes = [i.opcode for i in module.functions["f"].instructions()]
        assert Opcode.ALLOCA in opcodes
        assert Opcode.STORE in opcodes
        assert Opcode.LOAD in opcodes

    def test_builtins_declared(self):
        module = lower("int main() { return 0; }")
        assert module.functions["print"].is_declaration
        assert module.functions["input"].is_declaration

    def test_short_circuit_produces_phi(self):
        module = lower("int main() { bool b = 1 < 2 && 3 < 4; return b ? 1 : 0; }")
        assert any(i.opcode is Opcode.PHI for i in module.functions["main"].instructions())
