"""Compiler-state inspection tests."""

from repro.core.inspect import describe_state, summarize_state
from repro.core.state import CompilerState, pipeline_signature_of
from repro.core.stateful import StatefulPassManager
from repro.passmanager import build_pipeline
from tests.core.test_stateful import fresh_state, lower_src


def populated_state() -> CompilerState:
    state = fresh_state()
    state.begin_build()
    module = lower_src()
    StatefulPassManager(build_pipeline("O2"), state).run(module)
    return state


class TestSummarize:
    def test_counts_match(self):
        state = populated_state()
        summary = summarize_state(state)
        assert summary.total_records == state.num_records
        assert 0 < summary.dormant_records <= summary.total_records
        assert summary.build_counter == 1

    def test_positions_named_from_signature(self):
        summary = summarize_state(populated_state())
        names = {p.position: p.pass_name for p in summary.positions}
        assert names[0] == "mem2reg"
        assert "gvn" in names.values()

    def test_empty_state(self):
        summary = summarize_state(fresh_state())
        assert summary.total_records == 0
        assert summary.dormancy_rate == 0.0

    def test_describe_renders(self):
        text = describe_state(populated_state())
        assert "compiler state:" in text
        assert "mem2reg" in text
        assert "%" in text


class TestCLIInspect:
    def test_reproc_inspect_state(self, tmp_path, capsys):
        from repro.cli import reproc_main

        (tmp_path / "p.mc").write_text("int main() { print(1); return 0; }")
        state_file = tmp_path / "s.json"
        code = reproc_main(
            [
                str(tmp_path / "p.mc"),
                "--stateful",
                "--state-file",
                str(state_file),
                "--inspect-state",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "compiler state:" in err and "mem2reg" in err
