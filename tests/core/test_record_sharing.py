"""Fingerprint-keyed records are shared across functions and modules.

A consequence of keying dormancy by (position, fingerprint) rather than
by function name: two structurally identical functions — in the same or
different translation units — share records, so the second one bypasses
its dormant passes on its *first* ever compile.
"""

from repro.core.statistics import summarize_log
from repro.driver import Compiler, CompilerOptions
from repro.frontend.includes import MemoryFileProvider


IDENTICAL_BODY = """
  int s = 0;
  for (int i = 0; i < (x & 7); ++i) s += i * x;
  return s;
"""


def stateful_compiler():
    return Compiler(
        MemoryFileProvider({}), CompilerOptions(opt_level="O2", stateful=True)
    )


class TestRecordSharing:
    def test_identical_functions_share_records_within_a_unit(self):
        src = (
            f"int first(int x) {{ {IDENTICAL_BODY} }}\n"
            f"int second(int x) {{ {IDENTICAL_BODY} }}\n"
        )
        compiler = stateful_compiler()
        compiler.state.begin_build()
        result = compiler.compile_source("twins.mc", src)
        per_function = {}
        for event in result.events.events:
            if event.position < 0:
                continue
            entry = per_function.setdefault(event.function, [0, 0])
            entry[0 if event.skipped else 1] += 1
        # Functions run alphabetically: "first" populates the records,
        # "second" (identical IR) bypasses its dormant tail immediately.
        assert per_function["first"][0] == 0          # nothing to bypass yet
        assert per_function["second"][0] > 0          # shared records hit

    def test_identical_functions_share_records_across_units(self):
        compiler = stateful_compiler()
        compiler.state.begin_build()
        a = compiler.compile_source("a.mc", f"int fa(int x) {{ {IDENTICAL_BODY} }}\n")
        b = compiler.compile_source("b.mc", f"int fb(int x) {{ {IDENTICAL_BODY} }}\n")
        stats_a, stats_b = summarize_log(a.events), summarize_log(b.events)
        assert stats_a.bypassed == 0
        assert stats_b.bypassed > 0  # first-ever compile of b.mc still bypasses

    def test_different_bodies_do_not_share(self):
        compiler = stateful_compiler()
        compiler.state.begin_build()
        compiler.compile_source("a.mc", "int fa(int x) { return x + 1; }\n")
        result = compiler.compile_source("b.mc", "int fb(int x) { return x * 3 - 7; }\n")
        # Different IR: entry fingerprints differ, so no position-0 hit
        # (later positions may still coincide once both reduce to small
        # canonical forms — that is correct sharing, not a bug).
        first_positions = [
            e for e in result.events.events if e.position == 0 and e.function == "fb"
        ]
        assert all(not e.skipped for e in first_positions)
