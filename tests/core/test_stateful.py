"""Stateful pass manager tests — the core mechanism of the paper."""

import pytest

from repro.core.policies import SkipPolicy
from repro.core.state import CompilerState, pipeline_signature_of
from repro.core.stateful import StatefulPassManager
from repro.core.statistics import summarize_log
from repro.driver import Compiler, CompilerOptions
from repro.frontend.includes import IncludeResolver, MemoryFileProvider
from repro.frontend.sema import analyze
from repro.ir import print_module, verify_module
from repro.lowering import lower_program
from repro.passmanager import build_pipeline
from repro.vm.interp import run_module

SRC = """
int helper(int x) { return x * 2 + 1; }
int hot(int n) {
  int acc = 0;
  for (int i = 0; i < (n & 7); ++i) acc += helper(i);
  return acc;
}
int main() { print(hot(20)); return 0; }
"""


def lower_src(src=SRC):
    resolver = IncludeResolver(MemoryFileProvider({}))
    unit = resolver.resolve("t.mc", src)
    sema = analyze(unit.merged)
    return lower_program(unit.merged, sema, "t.mc")


def fresh_state() -> CompilerState:
    pipeline = build_pipeline("O2")
    return CompilerState(
        pipeline_signature=pipeline_signature_of(pipeline), fingerprint_mode="canonical"
    )


def stateful_run(state, src=SRC, policy=SkipPolicy.FINE_GRAINED):
    module = lower_src(src)
    manager = StatefulPassManager(build_pipeline("O2"), state, policy=policy)
    log = manager.run(module)
    verify_module(module)
    return module, log, manager


class TestBypassing:
    def test_first_build_executes_everything(self):
        state = fresh_state()
        state.begin_build()
        _, log, _ = stateful_run(state)
        stats = summarize_log(log)
        assert stats.bypassed == 0
        assert stats.executions > 0
        assert state.num_records == stats.executions

    def test_second_build_bypasses_dormant(self):
        state = fresh_state()
        state.begin_build()
        _, log1, _ = stateful_run(state)
        state.begin_build()
        _, log2, _ = stateful_run(state)
        s1, s2 = summarize_log(log1), summarize_log(log2)
        assert s2.bypassed == s1.dormant_executions
        assert s2.executions == s1.executions - s1.dormant_executions
        assert s2.dormant_executions == 0  # everything dormant got skipped

    def test_outputs_identical_with_and_without_state(self):
        state = fresh_state()
        state.begin_build()
        m1, *_ = stateful_run(state)
        state.begin_build()
        m2, *_ = stateful_run(state)
        assert print_module(m1) == print_module(m2)
        assert run_module(m1).same_behaviour(run_module(m2))

    def test_steady_state_single_fingerprint_per_function(self):
        state = fresh_state()
        state.begin_build()
        stateful_run(state)
        state.begin_build()
        _, _, manager = stateful_run(state)
        module = lower_src()
        functions = len(module.defined_functions())
        # Chain reuse: exactly one hash per function at pipeline entry.
        assert manager.overhead.fingerprint_count == functions

    def test_edited_function_reruns_only_its_passes(self):
        state = fresh_state()
        state.begin_build()
        stateful_run(state)
        state.begin_build()
        edited = SRC.replace("x * 2 + 1", "x * 3 + 1")
        _, log, _ = stateful_run(state, edited)
        per_function = {}
        for event in log.events:
            if event.position < 0:
                continue
            entry = per_function.setdefault(event.function, [0, 0])
            entry[0] += 0 if event.skipped else 1
            entry[1] += 1
        # helper changed -> most of its passes execute; untouched
        # functions keep their bypass level... (helper was inlined, so
        # callers' IR changed too; at minimum nothing is fully re-run
        # without need: total executed < total scheduled)
        executed = sum(e[0] for e in per_function.values())
        scheduled = sum(e[1] for e in per_function.values())
        assert executed < scheduled


class TestPolicies:
    def test_none_policy_never_skips(self):
        state = fresh_state()
        state.begin_build()
        stateful_run(state, policy=SkipPolicy.NONE)
        state.begin_build()
        _, log, _ = stateful_run(state, policy=SkipPolicy.NONE)
        assert summarize_log(log).bypassed == 0

    def test_coarse_policy_is_all_or_nothing_per_function(self):
        state = fresh_state()
        state.begin_build()
        _, log1, _ = stateful_run(state, policy=SkipPolicy.COARSE)
        state.begin_build()
        _, log2, _ = stateful_run(state, policy=SkipPolicy.COARSE)

        def by_function(log):
            out = {}
            for event in log.events:
                if event.position < 0:
                    continue
                entry = out.setdefault(event.function, {"executed": 0, "skipped": 0, "changed": 0})
                if event.skipped:
                    entry["skipped"] += 1
                else:
                    entry["executed"] += 1
                    entry["changed"] += 1 if event.changed else 0
            return out

        first, second = by_function(log1), by_function(log2)
        for fn_name, counters in second.items():
            # All-or-nothing: a function is either fully skipped or fully run.
            assert counters["executed"] == 0 or counters["skipped"] == 0
            # Skipped exactly when the previous pipeline was fully dormant.
            was_fully_dormant = first[fn_name]["changed"] == 0
            assert (counters["skipped"] > 0) == was_fully_dormant

    def test_coarse_skips_whole_pipeline_for_stable_ir(self):
        # Feed the same *already optimized* module through the pipeline
        # twice: the second pass over it is fully dormant, so a third
        # run under coarse policy skips everything.
        state = fresh_state()
        module = lower_src()
        # Iterate until the pipeline reaches its fixpoint and coarse
        # records cover every function; then everything is skipped.
        for build in range(5):
            state.begin_build()
            manager = StatefulPassManager(
                build_pipeline("O2"), state, policy=SkipPolicy.COARSE
            )
            log = manager.run(module)
            stats = summarize_log(log)
            if stats.executions == 0:
                assert stats.bypassed > 0
                break
        else:
            raise AssertionError("coarse policy never reached full bypass")

    def test_fine_beats_coarse_on_bypass_count(self):
        state_fine, state_coarse = fresh_state(), fresh_state()
        state_fine.begin_build()
        stateful_run(state_fine, policy=SkipPolicy.FINE_GRAINED)
        state_coarse.begin_build()
        stateful_run(state_coarse, policy=SkipPolicy.COARSE)
        state_fine.begin_build()
        _, log_f, _ = stateful_run(state_fine, policy=SkipPolicy.FINE_GRAINED)
        state_coarse.begin_build()
        _, log_c, _ = stateful_run(state_coarse, policy=SkipPolicy.COARSE)
        assert summarize_log(log_f).bypassed > summarize_log(log_c).bypassed


class TestSafety:
    def test_stateful_equals_stateless_object_output(self):
        provider = MemoryFileProvider({})
        stateless = Compiler(provider, CompilerOptions(opt_level="O2", stateful=False))
        ref = stateless.compile_source("t.mc", SRC)

        stateful = Compiler(provider, CompilerOptions(opt_level="O2", stateful=True))
        stateful.state.begin_build()
        first = stateful.compile_source("t.mc", SRC)
        stateful.state.begin_build()
        second = stateful.compile_source("t.mc", SRC)

        assert first.object_file.to_json() == ref.object_file.to_json()
        assert second.object_file.to_json() == ref.object_file.to_json()

    def test_stale_state_never_applied_after_pipeline_change(self):
        # State built under O2 must not be consulted by an O1 compiler.
        o2 = build_pipeline("O2")
        state = CompilerState(pipeline_signature=pipeline_signature_of(o2))
        assert not state.compatible_with(
            pipeline_signature_of(build_pipeline("O1")), "canonical"
        )

    def test_fingerprint_mode_change_invalidates(self):
        state = fresh_state()
        assert not state.compatible_with(state.pipeline_signature, "named")

    def test_named_mode_also_safe(self):
        pipeline = build_pipeline("O2")
        state = CompilerState(
            pipeline_signature=pipeline_signature_of(pipeline), fingerprint_mode="named"
        )
        state.begin_build()
        module1 = lower_src()
        StatefulPassManager(build_pipeline("O2"), state).run(module1)
        state.begin_build()
        module2 = lower_src()
        manager = StatefulPassManager(build_pipeline("O2"), state)
        manager.state.fingerprint_mode = "named"
        StatefulPassManager(build_pipeline("O2"), state).run(module2)
        assert print_module(module1) == print_module(module2)
