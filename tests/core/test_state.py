"""Compiler-state store tests: records, GC, serialization, compatibility."""

import pytest

from repro.core.state import (
    CompilerState,
    DormancyRecord,
    STATE_SCHEMA_VERSION,
    pipeline_signature_of,
)
from repro.passmanager.pipeline import build_pipeline


def make_state(**kwargs) -> CompilerState:
    return CompilerState(pipeline_signature="sig", fingerprint_mode="canonical", **kwargs)


class TestRecords:
    def test_remember_and_lookup(self):
        state = make_state()
        state.remember(3, "fp1", True, "fp1")
        record = state.lookup(3, "fp1")
        assert record is not None and record.dormant
        assert record.fingerprint_out == "fp1"

    def test_lookup_miss(self):
        state = make_state()
        assert state.lookup(0, "nope") is None

    def test_position_isolation(self):
        state = make_state()
        state.remember(1, "fp", True, "fp")
        assert state.lookup(2, "fp") is None

    def test_changed_record(self):
        state = make_state()
        state.remember(0, "in", False, "out")
        record = state.lookup(0, "in")
        assert not record.dormant and record.fingerprint_out == "out"

    def test_lookup_refreshes_gc_timestamp(self):
        state = make_state()
        state.remember(0, "fp", True, "fp")
        state.begin_build()
        state.begin_build()
        record = state.lookup(0, "fp")
        assert record.last_used_build == state.build_counter


class TestGarbageCollection:
    def test_stale_records_collected(self):
        state = make_state(gc_max_age=3)
        state.remember(0, "old", True, "old")
        for _ in range(5):
            state.begin_build()
        removed = state.collect_garbage()
        assert removed == 1 and state.num_records == 0

    def test_fresh_records_kept(self):
        state = make_state(gc_max_age=3)
        state.begin_build()
        state.remember(0, "fresh", True, "fresh")
        assert state.collect_garbage() == 0
        assert state.num_records == 1

    def test_recently_used_records_survive(self):
        state = make_state(gc_max_age=3)
        state.remember(0, "hot", True, "hot")
        for _ in range(5):
            state.begin_build()
            state.lookup(0, "hot")  # refresh
        assert state.collect_garbage() == 0


class TestSerialization:
    def test_round_trip(self):
        state = make_state()
        state.begin_build()
        state.remember(0, "a", True, "a")
        state.remember(1, "a", False, "b")
        restored = CompilerState.from_json(state.to_json())
        assert restored.num_records == 2
        assert restored.build_counter == 1
        assert restored.lookup(1, "a").fingerprint_out == "b"

    def test_schema_mismatch_rejected(self):
        text = make_state().to_json().replace(
            f'"schema":{STATE_SCHEMA_VERSION}', '"schema":1'
        )
        with pytest.raises(ValueError):
            CompilerState.from_json(text)

    def test_save_load_file(self, tmp_path):
        path = tmp_path / "state.json"
        state = make_state()
        state.remember(0, "x", True, "x")
        size = state.save(path)
        assert size == path.stat().st_size
        loaded = CompilerState.load(path, pipeline_signature="sig")
        assert loaded.num_records == 1

    def test_load_missing_file_gives_fresh(self, tmp_path):
        loaded = CompilerState.load(tmp_path / "nope.json", pipeline_signature="sig")
        assert loaded.num_records == 0
        assert loaded.pipeline_signature == "sig"

    def test_load_corrupt_file_gives_fresh(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ not json")
        loaded = CompilerState.load(path, pipeline_signature="sig")
        assert loaded.num_records == 0

    def test_load_incompatible_pipeline_gives_fresh(self, tmp_path):
        path = tmp_path / "state.json"
        state = make_state()
        state.remember(0, "x", True, "x")
        state.save(path)
        loaded = CompilerState.load(path, pipeline_signature="other-sig")
        assert loaded.num_records == 0

    def test_load_incompatible_fingerprint_mode_gives_fresh(self, tmp_path):
        path = tmp_path / "state.json"
        state = make_state()
        state.remember(0, "x", True, "x")
        state.save(path)
        loaded = CompilerState.load(path, pipeline_signature="sig", fingerprint_mode="named")
        assert loaded.num_records == 0


class TestPipelineSignature:
    def test_signature_reflects_positions(self):
        sig0 = pipeline_signature_of(build_pipeline("O0"))
        sig2 = pipeline_signature_of(build_pipeline("O2"))
        assert sig0 != sig2
        assert pipeline_signature_of(build_pipeline("O2")) == sig2

    def test_signature_has_indexed_names(self):
        sig = pipeline_signature_of(build_pipeline("O1"))
        assert sig.startswith("0:mem2reg")
