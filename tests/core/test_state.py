"""Compiler-state store tests: records, GC, serialization, compatibility."""

import pytest

from repro.core.state import (
    CompilerState,
    DormancyRecord,
    STATE_SCHEMA_VERSION,
    pipeline_signature_of,
)
from repro.passmanager.pipeline import build_pipeline


def make_state(**kwargs) -> CompilerState:
    return CompilerState(pipeline_signature="sig", fingerprint_mode="canonical", **kwargs)


class TestRecords:
    def test_remember_and_lookup(self):
        state = make_state()
        state.remember(3, "fp1", True, "fp1")
        record = state.lookup(3, "fp1")
        assert record is not None and record.dormant
        assert record.fingerprint_out == "fp1"

    def test_lookup_miss(self):
        state = make_state()
        assert state.lookup(0, "nope") is None

    def test_position_isolation(self):
        state = make_state()
        state.remember(1, "fp", True, "fp")
        assert state.lookup(2, "fp") is None

    def test_changed_record(self):
        state = make_state()
        state.remember(0, "in", False, "out")
        record = state.lookup(0, "in")
        assert not record.dormant and record.fingerprint_out == "out"

    def test_lookup_refreshes_gc_timestamp(self):
        state = make_state()
        state.remember(0, "fp", True, "fp")
        state.begin_build()
        state.begin_build()
        record = state.lookup(0, "fp")
        assert record.last_used_build == state.build_counter


class TestGarbageCollection:
    def test_stale_records_collected(self):
        state = make_state(gc_max_age=3)
        state.remember(0, "old", True, "old")
        for _ in range(5):
            state.begin_build()
        removed = state.collect_garbage()
        assert removed == 1 and state.num_records == 0

    def test_fresh_records_kept(self):
        state = make_state(gc_max_age=3)
        state.begin_build()
        state.remember(0, "fresh", True, "fresh")
        assert state.collect_garbage() == 0
        assert state.num_records == 1

    def test_recently_used_records_survive(self):
        state = make_state(gc_max_age=3)
        state.remember(0, "hot", True, "hot")
        for _ in range(5):
            state.begin_build()
            state.lookup(0, "hot")  # refresh
        assert state.collect_garbage() == 0


class TestSerialization:
    def test_round_trip(self):
        state = make_state()
        state.begin_build()
        state.remember(0, "a", True, "a")
        state.remember(1, "a", False, "b")
        restored = CompilerState.from_json(state.to_json())
        assert restored.num_records == 2
        assert restored.build_counter == 1
        assert restored.lookup(1, "a").fingerprint_out == "b"

    def test_schema_mismatch_rejected(self):
        text = make_state().to_json().replace(
            f'"schema":{STATE_SCHEMA_VERSION}', '"schema":1'
        )
        with pytest.raises(ValueError):
            CompilerState.from_json(text)

    def test_save_load_file(self, tmp_path):
        path = tmp_path / "state.json"
        state = make_state()
        state.remember(0, "x", True, "x")
        size = state.save(path)
        assert size == path.stat().st_size
        loaded = CompilerState.load(path, pipeline_signature="sig")
        assert loaded.num_records == 1

    def test_load_missing_file_gives_fresh(self, tmp_path):
        loaded = CompilerState.load(tmp_path / "nope.json", pipeline_signature="sig")
        assert loaded.num_records == 0
        assert loaded.pipeline_signature == "sig"

    def test_load_corrupt_file_gives_fresh(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ not json")
        loaded = CompilerState.load(path, pipeline_signature="sig")
        assert loaded.num_records == 0

    def test_load_incompatible_pipeline_gives_fresh(self, tmp_path):
        path = tmp_path / "state.json"
        state = make_state()
        state.remember(0, "x", True, "x")
        state.save(path)
        loaded = CompilerState.load(path, pipeline_signature="other-sig")
        assert loaded.num_records == 0

    def test_load_incompatible_fingerprint_mode_gives_fresh(self, tmp_path):
        path = tmp_path / "state.json"
        state = make_state()
        state.remember(0, "x", True, "x")
        state.save(path)
        loaded = CompilerState.load(path, pipeline_signature="sig", fingerprint_mode="named")
        assert loaded.num_records == 0


class TestPipelineSignature:
    def test_signature_reflects_positions(self):
        sig0 = pipeline_signature_of(build_pipeline("O0"))
        sig2 = pipeline_signature_of(build_pipeline("O2"))
        assert sig0 != sig2
        assert pipeline_signature_of(build_pipeline("O2")) == sig2

    def test_signature_has_indexed_names(self):
        sig = pipeline_signature_of(build_pipeline("O1"))
        assert sig.startswith("0:mem2reg")


class TestSnapshotDelta:
    """The parallel-build snapshot/delta-merge protocol."""

    def test_snapshot_is_isolated(self):
        state = make_state(build_counter=7)
        state.remember(0, "a", True, "a")
        snap = state.snapshot()
        assert snap.build_counter == 7 and snap.num_records == 1

        # Writes to the snapshot never reach the original...
        snap.remember(1, "b", False, "b2")
        assert state.lookup(1, "b") is None
        # ...and lookup's in-place GC refresh doesn't either.
        snap.build_counter = 99
        snap.lookup(0, "a")
        assert state.records[(0, "a")].last_used_build == 7

    def test_extract_delta_requires_tracking(self):
        with pytest.raises(RuntimeError):
            make_state().extract_delta()

    def test_delta_contains_writes_and_lookup_refreshes(self):
        state = make_state(build_counter=3)
        state.remember(0, "old", True, "old")
        state.remember(0, "untouched", True, "untouched")
        state.build_counter = 4
        state.begin_delta_tracking()
        state.lookup(0, "old")            # refresh only
        state.lookup(5, "miss")           # miss: not in the delta
        state.remember(1, "new", False, "new2")
        delta = state.extract_delta()
        assert set(delta.records) == {(0, "old"), (1, "new")}
        assert delta.build_counter == 4
        # Everything a worker touched is stamped with its build tick.
        assert all(r.last_used_build == 4 for r in delta.records.values())

    def test_delta_records_are_copies(self):
        state = make_state()
        state.begin_delta_tracking()
        state.remember(0, "a", True, "a")
        delta = state.extract_delta()
        delta.records[(0, "a")].dormant = False
        assert state.records[(0, "a")].dormant

    def test_merge_disjoint_deltas_is_order_independent(self):
        def worker_delta(position, fp):
            snap = make_state(build_counter=2)
            snap.begin_delta_tracking()
            snap.remember(position, fp, True, fp)
            return snap.extract_delta()

        a, b = worker_delta(0, "f1"), worker_delta(3, "f2")
        ab, ba = make_state(build_counter=2), make_state(build_counter=2)
        ab.merge_delta(a), ab.merge_delta(b)
        ba.merge_delta(b), ba.merge_delta(a)
        assert ab.records == ba.records
        assert ab.num_records == 2

    def test_merge_same_key_is_last_writer_wins(self):
        from repro.core.state import StateDelta

        state = make_state(build_counter=5)
        first = StateDelta(5, {(0, "f"): DormancyRecord(True, "f", 5)})
        second = StateDelta(5, {(0, "f"): DormancyRecord(False, "f2", 5)})
        state.merge_delta(first)
        state.merge_delta(second)
        assert state.num_records == 1
        record = state.records[(0, "f")]
        assert not record.dormant and record.fingerprint_out == "f2"

    def test_merge_keeps_freshest_gc_timestamp(self):
        from repro.core.state import StateDelta

        state = make_state(build_counter=10)
        state.records[(0, "f")] = DormancyRecord(True, "f", 9)
        stale_delta = StateDelta(10, {(0, "f"): DormancyRecord(True, "f", 4)})
        state.merge_delta(stale_delta)
        assert state.records[(0, "f")].last_used_build == 9

    def test_gc_after_merge_prunes_like_serial(self):
        # A record only touched by one worker must survive GC exactly as
        # if the serial loop had consulted it; an untouched ancient
        # record must be pruned either way.
        def run(merge_parallel):
            state = make_state(build_counter=50, gc_max_age=10)
            state.records[(0, "hot")] = DormancyRecord(True, "hot", 49)
            state.records[(0, "cold")] = DormancyRecord(True, "cold", 5)
            state.build_counter = 51
            if merge_parallel:
                snap = state.snapshot()
                snap.begin_delta_tracking()
                snap.lookup(0, "hot")
                state.merge_delta(snap.extract_delta())
            else:
                state.lookup(0, "hot")
            state.collect_garbage()
            return dict(state.records)

        assert run(True) == run(False)
        assert (0, "cold") not in run(True)
