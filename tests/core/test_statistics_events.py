"""Statistics and pass-event log tests."""

from repro.core.statistics import BypassStatistics, summarize_log
from repro.passmanager.events import PassEvent, PassEventLog
from repro.passmanager.pipeline import build_pipeline


def event(**kwargs):
    defaults = dict(
        module="m",
        function="f",
        position=0,
        pass_name="p",
        changed=False,
        skipped=False,
        work=10,
        wall_time=0.001,
    )
    defaults.update(kwargs)
    return PassEvent(**defaults)


class TestPassEventLog:
    def test_dormant_classification(self):
        assert event(changed=False, skipped=False).dormant
        assert not event(changed=True).dormant
        assert not event(skipped=True).dormant

    def test_aggregates(self):
        log = PassEventLog()
        log.record(event(pass_name="a", changed=True, work=5))
        log.record(event(pass_name="a", changed=False, work=3))
        log.record(event(pass_name="b", skipped=True, work=0))
        assert len(log.executed()) == 2
        assert len(log.skipped()) == 1
        assert len(log.dormant()) == 1
        assert log.total_work == 8
        assert log.dormancy_by_pass() == {"a": (1, 2)}
        assert log.work_by_pass() == {"a": 8, "b": 0}

    def test_extend(self):
        a, b = PassEventLog(), PassEventLog()
        a.record(event())
        b.record(event())
        a.extend(b)
        assert len(a.events) == 2


class TestSummarize:
    def test_module_prelude_excluded(self):
        log = PassEventLog()
        log.record(event(position=-1, pass_name="inline", changed=True))
        log.record(event(position=0, changed=False))
        stats = summarize_log(log)
        assert stats.executions == 1
        assert "inline" not in stats.by_pass

    def test_ratios(self):
        log = PassEventLog()
        log.record(event(position=0, changed=False))
        log.record(event(position=1, changed=True))
        log.record(event(position=2, skipped=True))
        log.record(event(position=3, skipped=True))
        stats = summarize_log(log)
        assert stats.dormancy_ratio == 0.5
        assert stats.bypass_ratio == 0.5

    def test_empty(self):
        stats = summarize_log(PassEventLog())
        assert stats.dormancy_ratio == 0.0 and stats.bypass_ratio == 0.0

    def test_merge(self):
        a = BypassStatistics(executions=2, dormant_executions=1, bypassed=3, work_executed=10)
        a.by_pass["x"] = {"executed": 2, "dormant": 1, "bypassed": 3, "work": 10}
        b = BypassStatistics(executions=1, dormant_executions=0, bypassed=1, work_executed=5)
        b.by_pass["x"] = {"executed": 1, "dormant": 0, "bypassed": 1, "work": 5}
        a.merge(b)
        assert a.executions == 3 and a.bypassed == 4 and a.work_executed == 15
        assert a.by_pass["x"]["work"] == 15


class TestMergeEdgeCases:
    def test_merge_empty_into_populated_is_identity(self):
        a = BypassStatistics(executions=2, dormant_executions=1, bypassed=3, work_executed=10)
        a.by_pass["x"] = {"executed": 2, "dormant": 1, "bypassed": 3, "work": 10}
        before = a.to_dict()
        a.merge(BypassStatistics())
        assert a.to_dict() == before

    def test_merge_populated_into_empty_copies(self):
        a = BypassStatistics()
        b = BypassStatistics(executions=1, dormant_executions=1, bypassed=0, work_executed=4)
        b.by_pass["y"] = {"executed": 1, "dormant": 1, "bypassed": 0, "work": 4}
        a.merge(b)
        assert a.to_dict() == b.to_dict()
        # The merge must copy, not alias, the per-pass dicts.
        a.by_pass["y"]["work"] = 99
        assert b.by_pass["y"]["work"] == 4

    def test_merge_disjoint_by_pass_keys(self):
        a = BypassStatistics(executions=1, work_executed=3)
        a.by_pass["cse"] = {"executed": 1, "dormant": 0, "bypassed": 0, "work": 3}
        b = BypassStatistics(executions=2, dormant_executions=1, work_executed=7)
        b.by_pass["gvn"] = {"executed": 2, "dormant": 1, "bypassed": 0, "work": 7}
        a.merge(b)
        assert set(a.by_pass) == {"cse", "gvn"}
        assert a.by_pass["cse"]["work"] == 3 and a.by_pass["gvn"]["work"] == 7
        assert a.executions == 3 and a.work_executed == 10

    def test_merge_then_ratios(self):
        a = BypassStatistics(executions=2, dormant_executions=2)
        b = BypassStatistics(executions=2, dormant_executions=0, bypassed=4)
        a.merge(b)
        assert a.dormancy_ratio == 0.5  # 2 dormant of 4 executions
        assert a.bypass_ratio == 0.5  # 4 bypassed of 8 scheduled runs

    def test_round_trip(self):
        a = BypassStatistics(executions=2, dormant_executions=1, bypassed=3, work_executed=10)
        a.by_pass["x"] = {"executed": 2, "dormant": 1, "bypassed": 3, "work": 10}
        clone = BypassStatistics.from_dict(a.to_dict())
        assert clone.to_dict() == a.to_dict()


class TestFromMetrics:
    def test_equivalent_to_summarize_log(self):
        """Registry counters and the event log describe one compilation
        identically — the registry path is the summary's new source of
        truth, so they must never drift."""
        from repro.driver import Compiler, CompilerOptions
        from repro.frontend.includes import MemoryFileProvider

        source = (
            "int helper(int x) { int y = x * 2; return y + 1; }\n"
            "int main() { print(helper(20)); return 0; }\n"
        )
        provider = MemoryFileProvider({})
        for stateful in (False, True):
            compiler = Compiler(provider, CompilerOptions(stateful=stateful))
            result = compiler.compile_source("unit.mc", source)
            from_log = summarize_log(result.events)
            from_registry = BypassStatistics.from_metrics(result.metrics)
            assert from_registry.to_dict() == from_log.to_dict()

    def test_empty_registry(self):
        from repro.obs.metrics import MetricsRegistry

        stats = BypassStatistics.from_metrics(MetricsRegistry())
        assert stats.executions == 0 and stats.by_pass == {}


class TestPipelines:
    def test_position_names_stable(self):
        p = build_pipeline("O2")
        names = p.position_names()
        assert len(names) == p.num_function_passes
        assert names[0] == "0:mem2reg"
        assert names == build_pipeline("O2").position_names()

    def test_levels_differ(self):
        assert build_pipeline("O0").num_function_passes < build_pipeline("O1").num_function_passes
        assert build_pipeline("O1").num_function_passes < build_pipeline("O2").num_function_passes

    def test_unknown_level(self):
        import pytest

        with pytest.raises(ValueError):
            build_pipeline("O3")

    def test_describe(self):
        text = build_pipeline("O1").describe()
        assert "mem2reg" in text and "funcattrs" in text
