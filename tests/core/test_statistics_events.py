"""Statistics and pass-event log tests."""

from repro.core.statistics import BypassStatistics, summarize_log
from repro.passmanager.events import PassEvent, PassEventLog
from repro.passmanager.pipeline import build_pipeline


def event(**kwargs):
    defaults = dict(
        module="m",
        function="f",
        position=0,
        pass_name="p",
        changed=False,
        skipped=False,
        work=10,
        wall_time=0.001,
    )
    defaults.update(kwargs)
    return PassEvent(**defaults)


class TestPassEventLog:
    def test_dormant_classification(self):
        assert event(changed=False, skipped=False).dormant
        assert not event(changed=True).dormant
        assert not event(skipped=True).dormant

    def test_aggregates(self):
        log = PassEventLog()
        log.record(event(pass_name="a", changed=True, work=5))
        log.record(event(pass_name="a", changed=False, work=3))
        log.record(event(pass_name="b", skipped=True, work=0))
        assert len(log.executed()) == 2
        assert len(log.skipped()) == 1
        assert len(log.dormant()) == 1
        assert log.total_work == 8
        assert log.dormancy_by_pass() == {"a": (1, 2)}
        assert log.work_by_pass() == {"a": 8, "b": 0}

    def test_extend(self):
        a, b = PassEventLog(), PassEventLog()
        a.record(event())
        b.record(event())
        a.extend(b)
        assert len(a.events) == 2


class TestSummarize:
    def test_module_prelude_excluded(self):
        log = PassEventLog()
        log.record(event(position=-1, pass_name="inline", changed=True))
        log.record(event(position=0, changed=False))
        stats = summarize_log(log)
        assert stats.executions == 1
        assert "inline" not in stats.by_pass

    def test_ratios(self):
        log = PassEventLog()
        log.record(event(position=0, changed=False))
        log.record(event(position=1, changed=True))
        log.record(event(position=2, skipped=True))
        log.record(event(position=3, skipped=True))
        stats = summarize_log(log)
        assert stats.dormancy_ratio == 0.5
        assert stats.bypass_ratio == 0.5

    def test_empty(self):
        stats = summarize_log(PassEventLog())
        assert stats.dormancy_ratio == 0.0 and stats.bypass_ratio == 0.0

    def test_merge(self):
        a = BypassStatistics(executions=2, dormant_executions=1, bypassed=3, work_executed=10)
        a.by_pass["x"] = {"executed": 2, "dormant": 1, "bypassed": 3, "work": 10}
        b = BypassStatistics(executions=1, dormant_executions=0, bypassed=1, work_executed=5)
        b.by_pass["x"] = {"executed": 1, "dormant": 0, "bypassed": 1, "work": 5}
        a.merge(b)
        assert a.executions == 3 and a.bypassed == 4 and a.work_executed == 15
        assert a.by_pass["x"]["work"] == 15


class TestPipelines:
    def test_position_names_stable(self):
        p = build_pipeline("O2")
        names = p.position_names()
        assert len(names) == p.num_function_passes
        assert names[0] == "0:mem2reg"
        assert names == build_pipeline("O2").position_names()

    def test_levels_differ(self):
        assert build_pipeline("O0").num_function_passes < build_pipeline("O1").num_function_passes
        assert build_pipeline("O1").num_function_passes < build_pipeline("O2").num_function_passes

    def test_unknown_level(self):
        import pytest

        with pytest.raises(ValueError):
            build_pipeline("O3")

    def test_describe(self):
        text = build_pipeline("O1").describe()
        assert "mem2reg" in text and "funcattrs" in text
