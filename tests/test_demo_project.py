"""End-to-end integration over the hand-written demo project.

The demo project (examples/demo_project) is real MiniC written by hand
— insertion sort + a PRNG — complementing the generated workloads.  It
exercises the full stack from disk: CLI build, incremental rebuilds
(stateless and stateful), cross-module linking, and execution.
"""

import shutil
from pathlib import Path

import pytest

from repro.buildsys.builddb import BuildDatabase
from repro.buildsys.incremental import IncrementalBuilder
from repro.cli import reprobuild_main
from repro.driver import CompilerOptions
from repro.vm.machine import VirtualMachine
from repro.workload.project import Project

DEMO = Path(__file__).parent.parent / "examples" / "demo_project"
EXPECTED_OUTPUT = ["1", "97", "97", "907", "57"]


@pytest.fixture
def demo_copy(tmp_path):
    target = tmp_path / "demo"
    shutil.copytree(DEMO, target)
    return target


class TestDemoProject:
    def test_cli_build_and_run(self, demo_copy, tmp_path, capsys):
        db = tmp_path / "build.db"
        code = reprobuild_main([str(demo_copy), "--db", str(db), "--run"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.split() == EXPECTED_OUTPUT

    def test_stateful_rebuild_after_edit(self, demo_copy, tmp_path, capsys):
        db = tmp_path / "build.db"
        assert reprobuild_main([str(demo_copy), "--db", str(db), "--stateful"]) == 0
        capsys.readouterr()
        # Edit main only: tweak the seed.
        main = demo_copy / "main.mc"
        main.write_text(main.read_text().replace("rng_seed(42)", "rng_seed(43)"))
        assert reprobuild_main([str(demo_copy), "--db", str(db), "--stateful", "--run"]) == 0
        captured = capsys.readouterr()
        assert "1 recompiled, 2 up-to-date" in captured.err
        assert "bypassed" in captured.err
        assert captured.out.split()[0] == "1"  # still sorted

    def test_header_edit_rebuilds_dependents(self, demo_copy, tmp_path, capsys):
        db = tmp_path / "build.db"
        reprobuild_main([str(demo_copy), "--db", str(db)])
        capsys.readouterr()
        header = demo_copy / "sort.mh"
        header.write_text(header.read_text().replace("SORT_MAX = 64", "SORT_MAX = 128"))
        reprobuild_main([str(demo_copy), "--db", str(db)])
        captured = capsys.readouterr()
        # sort.mc and main.mc include sort.mh; rng.mc does not.
        assert "2 recompiled, 1 up-to-date" in captured.err

    def test_opt_levels_agree_on_behaviour(self, demo_copy):
        project = Project.read_from(demo_copy)
        outputs = []
        for level in ("O0", "O1", "O2"):
            report = IncrementalBuilder(
                project.provider(),
                project.unit_paths,
                CompilerOptions(opt_level=level),
                BuildDatabase(),
            ).build()
            outputs.append(VirtualMachine(report.image).run())
        assert outputs[0].same_behaviour(outputs[1])
        assert outputs[1].same_behaviour(outputs[2])
        assert [str(v) for v in outputs[0].output] == EXPECTED_OUTPUT

    def test_stateful_objects_match_stateless(self, demo_copy):
        project = Project.read_from(demo_copy)
        dbs = {}
        for name, stateful in (("sl", False), ("sf", True)):
            db = BuildDatabase()
            IncrementalBuilder(
                project.provider(),
                project.unit_paths,
                CompilerOptions(opt_level="O2", stateful=stateful),
                db,
            ).build()
            dbs[name] = db
        for path in project.unit_paths:
            assert dbs["sl"].units[path].object_json == dbs["sf"].units[path].object_json
