"""Parallel builds: determinism vs serial, state merging, failure handling."""

import os

import pytest

from repro.buildsys.builddb import BuildDatabase
from repro.buildsys.incremental import IncrementalBuilder
from repro.buildsys.parallel import BuildOptions, compile_unit
from repro.driver import Compiler, CompilerOptions
from repro.frontend.diagnostics import CompileError
from repro.frontend.includes import MemoryFileProvider
from repro.obs.trace import DRIVER_TRACK, Tracer
from repro.vm.machine import VirtualMachine

FILES = {
    "util.mh": (
        "const int SCALE = 3;\n"
        "int util_scale(int x);\n"
        "int util_clamp(int x, int lo, int hi);\n"
    ),
    "util.mc": (
        'include "util.mh";\n'
        "int util_scale(int x) { return x * SCALE; }\n"
        "int util_clamp(int x, int lo, int hi) {\n"
        "  if (x < lo) return lo;\n"
        "  if (x > hi) return hi;\n"
        "  return x;\n"
        "}\n"
    ),
    "extra.mc": "int unused_helper(int x) { return x - 1; }\n",
    "main.mc": (
        'include "util.mh";\n'
        "int checksum(int a, int b) { return a * 31 + b; }\n"
        "int main() { print(util_scale(14)); return checksum(3, 4) - checksum(3, 4); }\n"
    ),
}
UNITS = ["extra.mc", "main.mc", "util.mc"]

#: The thread executor exercises the identical snapshot/delta protocol
#: without fork, so the suite stays fast and sandbox-proof; one process
#: test covers the pickling path.
THREADS4 = BuildOptions(jobs=4, executor="thread")
SERIAL = BuildOptions(jobs=1, executor="serial")


def build(
    files,
    db,
    units=UNITS,
    build_options=THREADS4,
    link_output=True,
    tracer=None,
    **options,
):
    builder = IncrementalBuilder(
        MemoryFileProvider(files), units, CompilerOptions(**options), db, build_options,
        **({"tracer": tracer} if tracer is not None else {}),
    )
    return builder.build(link_output=link_output)


def image_key(image):
    return (image.code, image.functions, image.global_base, image.data)


class TestBuildOptions:
    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError):
            BuildOptions(executor="fibers")

    def test_jobs_none_means_cpu_count(self):
        assert BuildOptions(jobs=None).resolved_jobs() == (os.cpu_count() or 1)

    def test_from_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUILD_JOBS", "4")
        monkeypatch.setenv("REPRO_BUILD_EXECUTOR", "thread")
        options = BuildOptions.from_env()
        assert options.jobs == 4 and options.executor == "thread"

    def test_from_env_defaults_serial_behavior(self, monkeypatch):
        monkeypatch.delenv("REPRO_BUILD_JOBS", raising=False)
        assert BuildOptions.from_env().resolved_jobs() == 1


class TestDeterminism:
    @pytest.mark.parametrize("stateful", [False, True])
    def test_parallel_matches_serial(self, stateful):
        db_s, db_p = BuildDatabase(), BuildDatabase()
        serial = build(FILES, db_s, build_options=SERIAL, stateful=stateful)
        parallel = build(FILES, db_p, stateful=stateful)

        assert parallel.jobs == 3  # capped at the dirty-unit count
        assert image_key(serial.image) == image_key(parallel.image)
        assert serial.state_records == parallel.state_records
        for path in UNITS:
            assert db_s.units[path].object_json == db_p.units[path].object_json
        assert VirtualMachine(parallel.image).run().output == [42]

    def test_process_pool_matches_serial(self):
        db_s, db_p = BuildDatabase(), BuildDatabase()
        serial = build(FILES, db_s, build_options=SERIAL, stateful=True)
        parallel = build(
            FILES, db_p, build_options=BuildOptions(jobs=4), stateful=True
        )
        assert image_key(serial.image) == image_key(parallel.image)
        assert serial.state_records == parallel.state_records

    def test_incremental_rebuild_under_parallelism(self):
        db = BuildDatabase()
        build(FILES, db, stateful=True)
        edited = dict(FILES, **{"main.mc": FILES["main.mc"].replace("14", "21")})
        report = build(edited, db, stateful=True)
        assert [u.path for u in report.compiled] == ["main.mc"]
        assert report.jobs == 1  # one dirty unit: no pool spun up
        assert report.bypass.bypassed > 0  # records from the parallel clean build
        assert VirtualMachine(report.image).run().output == [63]

    def test_gc_prunes_like_serial_after_parallel_build(self):
        reports = {}
        for name, build_options in (("serial", SERIAL), ("parallel", THREADS4)):
            db = BuildDatabase()
            build(FILES, db, build_options=build_options, stateful=True)
            db.live_state.gc_max_age = 0  # prune everything this build didn't touch
            edited = dict(FILES, **{"main.mc": FILES["main.mc"].replace("14", "21")})
            reports[name] = (
                build(edited, db, build_options=build_options, stateful=True),
                db.live_state.num_records,
            )
        assert reports["serial"][1] == reports["parallel"][1]


class TestReportAttribution:
    def test_workers_and_speedup_reported(self):
        report = build(FILES, BuildDatabase())
        assert report.jobs > 1
        assert all(unit.worker.startswith("reprobuild") for unit in report.compiled)
        assert 1 <= report.num_workers <= report.jobs
        assert report.parallel_speedup > 0.0
        assert f"-j {report.jobs}" in report.describe()

    def test_serial_report_unchanged(self):
        report = build(FILES, BuildDatabase(), build_options=SERIAL)
        assert report.jobs == 1 and report.num_workers == 1
        assert all(unit.worker == "main" for unit in report.compiled)
        assert "-j" not in report.describe()


class TestSpanRebasing:
    """Worker spans must cross the pool boundary onto the driver timeline."""

    def test_worker_spans_rebased_with_attribution(self):
        tracer = Tracer()
        report = build(FILES, BuildDatabase(), tracer=tracer, stateful=True)
        assert report.jobs > 1
        spans = tracer.spans

        units = [s for s in spans if s.category == "unit"]
        assert sorted(s.name for s in units) == sorted(UNITS)
        # Every unit span was compiled on (and re-based onto) a worker
        # track, and the worker names match the report's attribution.
        unit_tracks = {s.name: s.track for s in units}
        reported = {u.path: u.worker for u in report.compiled}
        assert unit_tracks == reported
        assert all(track.startswith("reprobuild") for track in unit_tracks.values())

        # Pass and phase spans nest inside a unit span on the same
        # worker track — nesting survives the re-base.  (One thread may
        # compile several units, so each child belongs to exactly one.)
        children = [
            s for s in spans if s.category in ("pass", "pipeline", "phase")
            and s.track != DRIVER_TRACK
        ]
        assert children
        for child in children:
            owners = [u for u in units if u.encloses(child)]
            assert len(owners) == 1, (child.name, child.track)

        # The driver's own spans stay on the driver track and the build
        # span encloses every worker span after re-basing.
        (build_span,) = [s for s in spans if s.category == "build"]
        assert build_span.track == DRIVER_TRACK
        slack = 0.05  # wall-clock epochs on one machine agree well within this
        for span in units:
            assert build_span.start - slack <= span.start
            assert span.end <= build_span.end + slack

    def test_untraced_build_collects_nothing(self):
        report = build(FILES, BuildDatabase(), stateful=True)
        assert report.num_recompiled == len(UNITS)  # no tracer, still builds


class TestFailure:
    def test_failed_unit_reports_earliest_error_and_keeps_good_units(self):
        files = dict(FILES, **{"main.mc": "int main() { return undefined_fn(); }\n"})
        db = BuildDatabase()
        with pytest.raises(CompileError):
            build(files, db)
        # Deterministic DB contents despite arbitrary completion order:
        # every successfully compiled unit is recorded, the broken one is not.
        assert "main.mc" not in db.units
        assert set(db.units) <= {"extra.mc", "util.mc"}

        report = build(FILES, db)
        assert "main.mc" in [u.path for u in report.compiled]
        assert set(u.path for u in report.compiled) | set(report.up_to_date) == set(UNITS)
        assert VirtualMachine(report.image).run().output == [42]


class TestCompileUnitHelper:
    def test_outcome_round_trips_object_and_delta(self):
        provider = MemoryFileProvider(FILES)
        options = CompilerOptions(stateful=True)
        state = Compiler(provider, options).state.snapshot()
        outcome = compile_unit(provider, options, state, "util.mc", worker="w0")
        assert not outcome.failed and outcome.worker == "w0"
        assert outcome.delta is not None and outcome.delta.num_records > 0
        assert state.num_records == 0  # the shipped snapshot stays pristine

    def test_outcome_captures_compile_error(self):
        provider = MemoryFileProvider({"bad.mc": "int main() { return nope(); }\n"})
        outcome = compile_unit(provider, CompilerOptions(), None, "bad.mc")
        assert outcome.failed and outcome.error_kind == "compile"
        assert outcome.diagnostics
        with pytest.raises(CompileError):
            outcome.raise_error()

    def test_outcome_captures_include_error(self):
        from repro.frontend.includes import IncludeError

        provider = MemoryFileProvider({"bad.mc": 'include "gone.mh";\nint main() { return 0; }\n'})
        outcome = compile_unit(provider, CompilerOptions(), None, "bad.mc")
        assert outcome.failed and outcome.error_kind == "include"
        with pytest.raises(IncludeError):
            outcome.raise_error()
