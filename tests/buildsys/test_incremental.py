"""IncrementalBuilder: scheduling, caching, state persistence, linking."""

import pytest

from repro.buildsys.builddb import BuildDatabase
from repro.buildsys.incremental import IncrementalBuilder
from repro.driver import CompilerOptions
from repro.frontend.includes import IncludeError, MemoryFileProvider
from repro.vm.machine import VirtualMachine

# Each unit carries more than one function so that an edit leaves
# unchanged functions behind — the population the stateful compiler
# bypasses passes for on the rebuild.
FILES = {
    "util.mh": (
        "const int SCALE = 3;\n"
        "int util_scale(int x);\n"
        "int util_clamp(int x, int lo, int hi);\n"
    ),
    "util.mc": (
        'include "util.mh";\n'
        "int util_scale(int x) { return x * SCALE; }\n"
        "int util_clamp(int x, int lo, int hi) {\n"
        "  if (x < lo) return lo;\n"
        "  if (x > hi) return hi;\n"
        "  return x;\n"
        "}\n"
    ),
    "extra.mc": "int unused_helper(int x) { return x - 1; }\n",
    "main.mc": (
        'include "util.mh";\n'
        "int checksum(int a, int b) { return a * 31 + b; }\n"
        "int main() { print(util_scale(14)); return checksum(3, 4) - checksum(3, 4); }\n"
    ),
}
UNITS = ["extra.mc", "main.mc", "util.mc"]


def build(files, db, units=UNITS, link_output=True, build_options=None, **options):
    builder = IncrementalBuilder(
        MemoryFileProvider(files), units, CompilerOptions(**options), db, build_options
    )
    return builder.build(link_output=link_output)


def images_equal(a, b):
    return (
        a.code == b.code
        and a.functions == b.functions
        and a.global_base == b.global_base
        and a.data == b.data
    )


class TestScheduling:
    def test_clean_build_compiles_everything(self):
        db = BuildDatabase()
        report = build(FILES, db)
        assert report.num_recompiled == 3 and report.up_to_date == []
        assert sorted(db.units) == UNITS
        assert VirtualMachine(report.image).run().output == [42]

    def test_noop_rebuild_recompiles_nothing(self):
        db = BuildDatabase()
        first = build(FILES, db)
        # Digest-identical rewrite: a fresh provider with the same text.
        second = build(dict(FILES), db)
        assert second.num_recompiled == 0
        assert second.up_to_date == UNITS
        assert second.total_pass_work == 0
        assert images_equal(first.image, second.image)

    def test_body_edit_recompiles_one_unit(self):
        db = BuildDatabase()
        build(FILES, db)
        edited = dict(FILES, **{"main.mc": FILES["main.mc"].replace("14", "21")})
        report = build(edited, db)
        assert [u.path for u in report.compiled] == ["main.mc"]
        assert sorted(report.up_to_date) == ["extra.mc", "util.mc"]
        assert VirtualMachine(report.image).run().output == [63]

    def test_header_edit_recompiles_exactly_dependents(self):
        db = BuildDatabase()
        build(FILES, db)
        edited = dict(FILES, **{"util.mh": FILES["util.mh"].replace("= 3", "= 5")})
        report = build(edited, db)
        assert [u.path for u in report.compiled] == ["main.mc", "util.mc"]
        assert report.up_to_date == ["extra.mc"]
        assert VirtualMachine(report.image).run().output == [70]

    def test_removed_unit_is_pruned(self):
        db = BuildDatabase()
        build(FILES, db)
        remaining = {p: t for p, t in FILES.items() if p != "extra.mc"}
        report = build(remaining, db, units=["main.mc", "util.mc"])
        assert report.num_recompiled == 0
        assert "extra.mc" not in db.units

    def test_link_output_false_skips_linking(self):
        report = build(FILES, BuildDatabase(), link_output=False)
        assert report.image is None and report.link_time == 0.0
        assert report.num_recompiled == 3


class TestMidBuildFailure:
    def test_unit_2_of_3_fails_rebuild_after_fix_is_incremental(self):
        from repro.buildsys.parallel import BuildOptions
        from repro.frontend.diagnostics import CompileError

        # The serial loop specifically (the parallel analogue lives in
        # test_parallel.py): schedule order is [extra.mc, main.mc,
        # util.mc], so breaking the middle unit leaves a success before
        # the failure point and an unreached unit after it.
        serial = BuildOptions(jobs=1, executor="serial")
        broken = dict(FILES, **{"main.mc": "int main() { return missing_fn(); }\n"})
        db = BuildDatabase()
        with pytest.raises(CompileError):
            build(broken, db, stateful=True, build_options=serial)

        # The unit compiled before the failure is recorded; the broken
        # one is not; the one never reached is not.
        assert "extra.mc" in db.units
        assert "main.mc" not in db.units and "util.mc" not in db.units
        # Partial compiler state still landed in the DB.
        assert db.live_state is not None and db.live_state.num_records > 0

        report = build(FILES, db, stateful=True)
        assert "extra.mc" in report.up_to_date
        assert sorted(u.path for u in report.compiled) == ["main.mc", "util.mc"]
        assert VirtualMachine(report.image).run().output == [42]
        # And a further noop rebuild touches nothing at all.
        assert build(FILES, db, stateful=True).num_recompiled == 0


class TestMissingHeader:
    def test_build_fails_cleanly_then_recovers(self):
        files = {"main.mc": 'include "lib.mh";\nint main() { return LIB; }\n'}
        db = BuildDatabase()
        with pytest.raises(IncludeError):
            build(files, db, units=["main.mc"])
        assert db.units == {}  # nothing recorded for the failed unit

        files["lib.mh"] = "const int LIB = 9;\n"
        report = build(files, db, units=["main.mc"])
        assert report.num_recompiled == 1
        assert VirtualMachine(report.image).run().exit_code == 9
        # And the fixed tree is stable.
        assert build(files, db, units=["main.mc"]).num_recompiled == 0


class TestStateful:
    def test_edit_rebuild_bypasses_passes(self):
        db = BuildDatabase()
        clean = build(FILES, db, stateful=True)
        assert clean.state_records > 0
        assert db.live_state is not None

        edited = dict(FILES, **{"main.mc": FILES["main.mc"].replace("14", "15")})
        report = build(edited, db, stateful=True)
        assert report.num_recompiled == 1
        assert report.bypass.bypassed > 0
        assert sum(u.fingerprint_count for u in report.compiled) > 0

    def test_state_survives_db_round_trip(self, tmp_path):
        db = BuildDatabase()
        build(FILES, db, stateful=True)
        db.save(tmp_path / "build.db")

        reloaded = BuildDatabase.load(tmp_path / "build.db")
        edited = dict(FILES, **{"util.mc": FILES["util.mc"].replace("x *", "SCALE *")})
        report = build(edited, reloaded, stateful=True)
        assert report.num_recompiled == 1
        assert report.bypass.bypassed > 0  # records from before the round trip

    def test_incompatible_state_is_replaced(self):
        db = BuildDatabase()
        build(FILES, db, stateful=True, opt_level="O1")
        old_state = db.live_state
        report = build(dict(FILES), db, stateful=True, opt_level="O2")
        # Different pipeline: full recompile with a fresh state.
        assert db.live_state is not old_state
        assert report.bypass.bypassed == 0

    def test_stateful_objects_match_stateless(self):
        dbs = {}
        for stateful in (False, True):
            db = BuildDatabase()
            build(FILES, db, stateful=stateful)
            edited = dict(FILES, **{"main.mc": FILES["main.mc"].replace("14", "16")})
            build(edited, db, stateful=stateful)
            dbs[stateful] = db
        for path in UNITS:
            assert dbs[False].units[path].object_json == dbs[True].units[path].object_json

    def test_stateless_build_reports_no_state(self):
        report = build(FILES, BuildDatabase())
        assert report.state_records == 0
        assert report.bypass.bypassed == 0
        assert all(u.fingerprint_count == 0 for u in report.compiled)
