"""Dependency-scanner edge cases: closures, cycles, missing headers."""

from repro.buildsys.deps import DependencyScanner, content_digest
from repro.frontend.includes import MemoryFileProvider


def scanner(files):
    return DependencyScanner(MemoryFileProvider(files))


class TestDirectIncludes:
    def test_simple_scan(self):
        s = scanner({"a.mc": 'include "x.mh";\ninclude "y.mh";\nint main() { return 0; }\n'})
        assert s.direct_includes("a.mc") == ["x.mh", "y.mh"]

    def test_commented_include_ignored(self):
        s = scanner({"a.mc": '// include "x.mh";\ninclude "y.mh";\n'})
        assert s.direct_includes("a.mc") == ["y.mh"]

    def test_missing_file_has_no_includes(self):
        s = scanner({})
        assert s.direct_includes("ghost.mc") == []


class TestClosure:
    def test_transitive_first_seen_order(self):
        s = scanner(
            {
                "main.mc": 'include "a.mh";\n',
                "a.mh": 'include "b.mh";\nint fa(int x);\n',
                "b.mh": 'include "c.mh";\nint fb(int x);\n',
                "c.mh": "const int C = 1;\n",
            }
        )
        assert s.include_closure("main.mc") == ["a.mh", "b.mh", "c.mh"]

    def test_diamond_deduplicated(self):
        s = scanner(
            {
                "main.mc": 'include "a.mh";\ninclude "b.mh";\n',
                "a.mh": 'include "base.mh";\n',
                "b.mh": 'include "base.mh";\n',
                "base.mh": "const int B = 2;\n",
            }
        )
        assert s.include_closure("main.mc") == ["a.mh", "base.mh", "b.mh"]

    def test_include_cycle_terminates(self):
        s = scanner(
            {
                "main.mc": 'include "a.mh";\n',
                "a.mh": 'include "b.mh";\n',
                "b.mh": 'include "a.mh";\n',
            }
        )
        assert s.include_closure("main.mc") == ["a.mh", "b.mh"]

    def test_missing_header_appears_with_none_digest(self):
        s = scanner({"main.mc": 'include "ghost.mh";\n'})
        snapshot = s.snapshot("main.mc")
        assert snapshot.dep_digests == {"ghost.mh": None}
        assert snapshot.source_digest == content_digest('include "ghost.mh";\n')


class TestSnapshots:
    FILES = {
        "main.mc": 'include "a.mh";\nint main() { return A; }\n',
        "a.mh": "const int A = 7;\n",
    }

    def test_identical_tree_identical_snapshot(self):
        a = scanner(dict(self.FILES)).snapshot("main.mc")
        b = scanner(dict(self.FILES)).snapshot("main.mc")
        assert (a.source_digest, a.dep_digests) == (b.source_digest, b.dep_digests)

    def test_header_edit_changes_snapshot(self):
        edited = dict(self.FILES, **{"a.mh": "const int A = 8;\n"})
        a = scanner(dict(self.FILES)).snapshot("main.mc")
        b = scanner(edited).snapshot("main.mc")
        assert a.source_digest == b.source_digest
        assert a.dep_digests != b.dep_digests

    def test_header_appearing_changes_snapshot(self):
        missing = {"main.mc": self.FILES["main.mc"]}
        a = scanner(missing).snapshot("main.mc")
        b = scanner(dict(self.FILES)).snapshot("main.mc")
        assert a.dep_digests["a.mh"] is None
        assert b.dep_digests["a.mh"] is not None
