"""reprobuild's recovery behaviour on damaged or unwritable build DBs."""

import errno

import pytest

from repro.cli import reprobuild_main
from repro.persist import frame, read_artifact
from repro.testing import FaultPlan, inject_faults
from repro.workload.generator import generate_project
from repro.workload.spec import make_preset


@pytest.fixture()
def project(tmp_path):
    generate_project(make_preset("tiny", seed=2)).write_to(tmp_path / "proj")
    return tmp_path


def build_argv(project, **extra):
    argv = [
        str(project / "proj"), "--db", str(project / "build.reprodb"),
        "--stateful", "--no-history", "--no-lock",
    ]
    for flag in extra.get("flags", ()):
        argv.append(flag)
    return argv


class TestCorruptDatabaseRecovery:
    @pytest.mark.parametrize("damage", [
        b"",                                  # zero-byte file
        b"\x00\x01\x02 not json",             # binary garbage
        b'{"schema": 4, "units"',             # truncated JSON
        frame(b'{"schema": 4}')[:-4],          # truncated framed artifact
    ])
    def test_damaged_db_triggers_clean_full_rebuild(self, project, capsys, damage):
        db = project / "build.reprodb"
        db.write_bytes(damage)

        rc = reprobuild_main(build_argv(project))
        err = capsys.readouterr().err

        assert rc == 0
        assert "corrupt build database" in err
        assert "full rebuild" in err
        assert "Traceback" not in err
        # The rebuild replaced the damaged file with a valid one...
        rc = reprobuild_main(build_argv(project))
        err = capsys.readouterr().err
        assert rc == 0
        assert "corrupt" not in err  # ...so the second run is quiet.

    def test_bitflipped_db_is_caught_by_checksum(self, project, capsys):
        db = project / "build.reprodb"
        assert reprobuild_main(build_argv(project)) == 0
        capsys.readouterr()

        blob = bytearray(db.read_bytes())
        blob[-2] ^= 0x40  # flip one bit inside the JSON payload
        db.write_bytes(bytes(blob))

        rc = reprobuild_main(build_argv(project))
        err = capsys.readouterr().err
        assert rc == 0
        assert "corrupt build database" in err
        assert "checksum" in err

    def test_explain_treats_corrupt_db_as_empty(self, project, capsys):
        db = project / "build.reprodb"
        db.write_bytes(b"\xff\xfe garbage")
        rc = reprobuild_main(["explain", str(project / "proj"), "--db", str(db)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "corrupt build database" in captured.err
        assert "Traceback" not in captured.err


class TestSaveFailure:
    def test_unwritable_db_fails_with_message_not_traceback(self, project, capsys):
        # An errno storm longer than the retry budget makes every save
        # attempt fail, as if the disk went away mid-build.
        plan = FaultPlan.errno_at(0, code=errno.EROFS, op="open", count=999)
        with inject_faults(plan):
            rc = reprobuild_main(build_argv(project))
        err = capsys.readouterr().err
        assert rc == 1
        assert "failed to save build database" in err
        assert "Traceback" not in err

    def test_enospc_during_save_cleans_up_and_reports(self, project, capsys):
        plan = FaultPlan.errno_at(0, code=errno.ENOSPC, op="write", count=999)
        with inject_faults(plan):
            rc = reprobuild_main(build_argv(project))
        err = capsys.readouterr().err
        assert rc == 1
        assert "failed to save build database" in err
        # No temp litter next to the DB after the failure.
        leftovers = [p for p in project.iterdir() if ".tmp." in p.name]
        assert leftovers == []

    def test_state_save_failure_is_only_a_warning(self, project, capsys):
        # reproc's standalone state file is a cache: losing it costs
        # speed, not correctness, so the compile still succeeds.
        from repro.cli import reproc_main

        unit = next((project / "proj").glob("*.mc"))
        state_path = project / "state.json"
        plan = FaultPlan.errno_at(0, code=errno.EROFS, op="open", count=999)
        with inject_faults(plan):
            rc = reproc_main([
                str(unit), "--stateful", "--state-file", str(state_path),
            ])
        err = capsys.readouterr().err
        assert rc == 0
        assert "state" in err and "Traceback" not in err
        assert not state_path.exists()


class TestLegacyCompatibility:
    def test_unframed_legacy_db_still_loads(self, project, capsys):
        # A DB written before checksummed framing must keep working.
        import json

        from repro.buildsys.builddb import BuildDatabase

        db_path = project / "build.reprodb"
        assert reprobuild_main(build_argv(project)) == 0
        capsys.readouterr()

        payload = json.loads(read_artifact(db_path).decode("utf-8"))
        db_path.write_text(json.dumps(payload))  # strip the frame
        loaded = BuildDatabase.load(db_path)
        assert set(loaded.units)  # records survived

        rc = reprobuild_main(build_argv(project))
        err = capsys.readouterr().err
        assert rc == 0 and "corrupt" not in err
