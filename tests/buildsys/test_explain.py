"""Rebuild reasons: the explanation must match the scheduling decision."""

from repro.buildsys.builddb import BuildDatabase
from repro.buildsys.deps import DependencyScanner
from repro.buildsys.explain import (
    RebuildReason,
    explain_unit,
    rebuild_reason,
    top_passes,
)
from repro.buildsys.incremental import IncrementalBuilder
from repro.driver import CompilerOptions
from repro.frontend.includes import MemoryFileProvider

FILES = {
    "shared.mh": "const int BASE = 10;\nint helper(int x);\n",
    "helper.mc": 'include "shared.mh";\nint helper(int x) { return x + BASE; }\n',
    "main.mc": 'include "shared.mh";\nint main() { print(helper(5)); return 0; }\n',
    "lone.mc": "int lone() { return 1; }\n",
}
UNITS = ["helper.mc", "lone.mc", "main.mc"]


def built_db(files=FILES, **options):
    db = BuildDatabase()
    IncrementalBuilder(
        MemoryFileProvider(files), UNITS, CompilerOptions(**options), db
    ).build()
    return db


def reason_for(db, files, path):
    snapshot = DependencyScanner(MemoryFileProvider(files)).snapshot(path)
    return rebuild_reason(db.units.get(path), snapshot)


class TestRebuildReason:
    def test_up_to_date_after_clean_build(self):
        db = built_db()
        for path in UNITS:
            reason = reason_for(db, FILES, path)
            assert reason.kind == "up-to-date" and reason.is_up_to_date
            assert "up to date" in reason.describe()

    def test_missing_record(self):
        reason = reason_for(BuildDatabase(), FILES, "main.mc")
        assert reason.kind == "missing-record"
        assert not reason.is_up_to_date
        assert "no build record" in reason.describe()

    def test_source_digest_change(self):
        db = built_db()
        edited = dict(FILES, **{"main.mc": FILES["main.mc"].replace("5", "6")})
        reason = reason_for(db, edited, "main.mc")
        assert reason.kind == "source-changed" and reason.source_changed
        assert not reason.deps_changed
        assert "source text changed" in reason.describe()

    def test_header_closure_change(self):
        db = built_db()
        edited = dict(FILES, **{"shared.mh": FILES["shared.mh"].replace("10", "11")})
        reason = reason_for(db, edited, "main.mc")
        assert reason.kind == "deps-changed"
        assert not reason.source_changed
        assert reason.changed_deps == ["shared.mh"]
        assert "header closure changed" in reason.describe()
        assert "shared.mh" in reason.describe()
        # A unit outside the closure is untouched by the header edit.
        assert reason_for(db, edited, "lone.mc").is_up_to_date

    def test_header_vanishing_and_reappearing(self):
        db = built_db()
        gone = {k: v for k, v in FILES.items() if k != "shared.mh"}
        reason = reason_for(db, gone, "main.mc")
        assert reason.kind == "deps-changed"
        assert reason.vanished_deps == ["shared.mh"]

    def test_source_change_takes_precedence_over_deps(self):
        db = built_db()
        edited = dict(
            FILES,
            **{
                "main.mc": FILES["main.mc"].replace("5", "6"),
                "shared.mh": FILES["shared.mh"].replace("10", "11"),
            },
        )
        reason = reason_for(db, edited, "main.mc")
        assert reason.kind == "source-changed"
        assert reason.changed_deps == ["shared.mh"]  # evidence still collected

    def test_round_trip(self):
        db = built_db()
        edited = dict(FILES, **{"shared.mh": "const int BASE = 2;\nint helper(int x);\n"})
        reason = reason_for(db, edited, "main.mc")
        clone = RebuildReason.from_dict(reason.to_dict())
        assert clone == reason

    def test_verdict_matches_up_to_date_check(self):
        """The invariant: reason.is_up_to_date ≡ db.up_to_date(snapshot)."""
        db = built_db()
        variants = [
            FILES,
            dict(FILES, **{"main.mc": FILES["main.mc"] + "\n"}),
            dict(FILES, **{"shared.mh": FILES["shared.mh"] + "\n"}),
            {k: v for k, v in FILES.items() if k != "shared.mh"},
        ]
        for files in variants:
            scanner = DependencyScanner(MemoryFileProvider(files))
            for path in UNITS:
                snapshot = scanner.snapshot(path)
                reason = rebuild_reason(db.units.get(path), snapshot)
                assert reason.is_up_to_date == db.up_to_date(snapshot), (
                    path,
                    reason.kind,
                )


class TestExplainUnit:
    def test_explains_with_last_compile_profile(self):
        db = built_db(stateful=True)
        snapshot = DependencyScanner(MemoryFileProvider(FILES)).snapshot("main.mc")
        text = explain_unit(db, snapshot)
        assert "main.mc: up to date" in text
        assert "last compiled in" in text
        assert "top" in text and "work=" in text

    def test_never_built_unit_has_no_profile(self):
        snapshot = DependencyScanner(MemoryFileProvider(FILES)).snapshot("main.mc")
        text = explain_unit(BuildDatabase(), snapshot)
        assert "no build record" in text
        assert "last compiled" not in text

    def test_top_passes_ranked_by_work(self):
        stats = {
            "by_pass": {
                "cse": {"work": 5},
                "gvn": {"work": 9},
                "adce": {"work": 9},
            }
        }
        ranked = top_passes(stats, 2)
        assert [name for name, _ in ranked] == ["adce", "gvn"]  # ties by name
