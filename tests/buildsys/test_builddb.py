"""BuildDatabase: up-to-date checks and (de)serialization round trips."""

import json

import pytest

from repro.buildsys.builddb import (
    DB_SCHEMA_VERSION,
    BuildDatabase,
    CorruptDatabaseError,
)
from repro.buildsys.deps import DependencySnapshot, content_digest
from repro.core.state import CompilerState


def snapshot_of(path, text, deps=None):
    return DependencySnapshot(path, content_digest(text), dict(deps or {}))


def sample_db():
    db = BuildDatabase()
    db.record_unit(
        snapshot_of("main.mc", "int main() { return 0; }", {"a.mh": content_digest("x")}),
        '{"format": "repro-object-v1"}',
    )
    state = CompilerState(pipeline_signature="p1|p2", fingerprint_mode="canonical")
    state.begin_build()
    state.remember(0, "fp-in", True, "fp-in")
    state.remember(1, "fp-in", False, "fp-out")
    db.live_state = state
    return db


class TestUpToDate:
    def test_unknown_unit_is_dirty(self):
        assert not BuildDatabase().up_to_date(snapshot_of("m.mc", "x"))

    def test_recorded_unit_is_clean(self):
        db = BuildDatabase()
        snap = snapshot_of("m.mc", "x", {"h.mh": content_digest("h")})
        db.record_unit(snap, "{}")
        assert db.up_to_date(snap)

    def test_source_change_dirties(self):
        db = BuildDatabase()
        db.record_unit(snapshot_of("m.mc", "x"), "{}")
        assert not db.up_to_date(snapshot_of("m.mc", "y"))

    def test_dep_change_dirties(self):
        db = BuildDatabase()
        db.record_unit(snapshot_of("m.mc", "x", {"h.mh": "d1"}), "{}")
        assert not db.up_to_date(snapshot_of("m.mc", "x", {"h.mh": "d2"}))
        assert not db.up_to_date(snapshot_of("m.mc", "x", {}))
        assert not db.up_to_date(snapshot_of("m.mc", "x", {"h.mh": "d1", "i.mh": None}))

    def test_missing_source_is_dirty(self):
        db = BuildDatabase()
        db.record_unit(snapshot_of("m.mc", "x"), "{}")
        assert not db.up_to_date(DependencySnapshot("m.mc", None, {}))

    def test_prune_drops_vanished_units(self):
        db = BuildDatabase()
        db.record_unit(snapshot_of("keep.mc", "a"), "{}")
        db.record_unit(snapshot_of("gone.mc", "b"), "{}")
        assert db.prune(["keep.mc"]) == ["gone.mc"]
        assert list(db.units) == ["keep.mc"]


class TestRoundTrip:
    def test_units_and_state_survive(self, tmp_path):
        db = sample_db()
        path = tmp_path / "build.db"
        size = db.save(path)
        assert size == len(path.read_bytes()) and size > 0

        loaded = BuildDatabase.load(path)
        assert loaded.units.keys() == db.units.keys()
        record = loaded.units["main.mc"]
        assert record.source_digest == db.units["main.mc"].source_digest
        assert record.dep_digests == db.units["main.mc"].dep_digests
        assert record.object_json == db.units["main.mc"].object_json

        assert loaded.live_state is not None
        assert loaded.live_state.pipeline_signature == "p1|p2"
        assert loaded.live_state.build_counter == 1
        assert loaded.live_state.records == db.live_state.records

    def test_stateless_db_round_trips_without_state(self, tmp_path):
        db = BuildDatabase()
        db.record_unit(snapshot_of("m.mc", "x"), "{}")
        db.save(tmp_path / "db")
        loaded = BuildDatabase.load(tmp_path / "db")
        assert loaded.live_state is None
        assert "m.mc" in loaded.units

    def test_missing_file_loads_empty(self, tmp_path):
        db = BuildDatabase.load(tmp_path / "nope")
        assert db.units == {} and db.live_state is None

    def test_corrupt_file_raises_typed_error(self, tmp_path):
        path = tmp_path / "db"
        path.write_text("{not json")
        with pytest.raises(CorruptDatabaseError):
            BuildDatabase.load(path)

    def test_schema_mismatch_loads_empty(self, tmp_path):
        payload = json.loads(sample_db().to_json())
        payload["schema"] = DB_SCHEMA_VERSION + 1
        path = tmp_path / "db"
        path.write_text(json.dumps(payload))
        assert BuildDatabase.load(path).units == {}

class TestCorruptionContract:
    """Corrupt DB files raise the typed error — never ``EOFError`` or
    a bare parse exception — and ``load_or_empty`` recovers cleanly."""

    def test_zero_byte_file_raises_typed_error(self, tmp_path):
        # Regression: an interrupted first save used to surface as a
        # bare parse error; it must be CorruptDatabaseError instead.
        path = tmp_path / "db"
        path.write_bytes(b"")
        with pytest.raises(CorruptDatabaseError) as excinfo:
            BuildDatabase.load(path)
        assert "empty" in str(excinfo.value)

    def test_truncated_file_raises_typed_error(self, tmp_path):
        path = tmp_path / "db"
        sample_db().save(path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CorruptDatabaseError):
            BuildDatabase.load(path)

    def test_bitflip_fails_checksum(self, tmp_path):
        path = tmp_path / "db"
        sample_db().save(path)
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0xFF  # flip a payload byte; the frame header survives
        path.write_bytes(bytes(blob))
        with pytest.raises(CorruptDatabaseError) as excinfo:
            BuildDatabase.load(path)
        assert "checksum" in str(excinfo.value)

    def test_non_object_json_raises_typed_error(self, tmp_path):
        path = tmp_path / "db"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CorruptDatabaseError):
            BuildDatabase.load(path)

    def test_corruption_never_raises_untyped(self, tmp_path):
        # Whatever garbage is on disk, load either succeeds or raises
        # exactly the typed error the CLI knows how to recover from.
        for i, garbage in enumerate(
            [b"", b"\x00" * 40, b"{", b'{"schema": 2, "units": 3}',
             b'{"schema": 2}', b"%repro-artifact v1 nonsense",
             b"%repro-artifact v1 sha256=00 len=9999\n{}"]
        ):
            path = tmp_path / f"db{i}"
            path.write_bytes(garbage)
            try:
                BuildDatabase.load(path)
            except CorruptDatabaseError:
                pass

    def test_load_or_empty_recovers_with_diagnosis(self, tmp_path):
        path = tmp_path / "db"
        path.write_bytes(b"")
        db, err = BuildDatabase.load_or_empty(path)
        assert db.units == {} and db.live_state is None
        assert isinstance(err, CorruptDatabaseError)

        sample_db().save(path)
        db, err = BuildDatabase.load_or_empty(path)
        assert err is None and "main.mc" in db.units

    def test_save_is_checksummed_frame(self, tmp_path):
        path = tmp_path / "db"
        size = sample_db().save(path)
        blob = path.read_bytes()
        assert len(blob) == size
        assert blob.startswith(b"%repro-artifact ")

    def test_legacy_unframed_db_still_loads(self, tmp_path):
        # Files written before the checksummed-frame upgrade are plain
        # JSON; they load (unverified) rather than being invalidated.
        db = sample_db()
        path = tmp_path / "db"
        path.write_text(db.to_json())
        loaded = BuildDatabase.load(path)
        assert loaded.units.keys() == db.units.keys()

    def test_bad_embedded_state_keeps_units(self, tmp_path):
        # A compiler-state schema bump must not blow away the object cache.
        payload = json.loads(sample_db().to_json())
        state = json.loads(payload["state"])
        state["schema"] = -1
        payload["state"] = json.dumps(state)
        path = tmp_path / "db"
        path.write_text(json.dumps(payload))
        loaded = BuildDatabase.load(path)
        assert "main.mc" in loaded.units
        assert loaded.live_state is None
