"""Fingerprint-collision audit: confirms records, catches tampering."""

import dataclasses

import pytest

from repro.buildsys.audit import audit_fingerprint_collisions
from repro.buildsys.builddb import BuildDatabase
from repro.buildsys.incremental import IncrementalBuilder
from repro.buildsys.parallel import BuildOptions
from repro.core.policies import SkipPolicy
from repro.driver import CompilerOptions
from repro.frontend.includes import MemoryFileProvider

FILES = {
    "util.mh": (
        "const int SCALE = 3;\n"
        "int util_scale(int x);\n"
        "int util_clamp(int x, int lo, int hi);\n"
    ),
    "util.mc": (
        'include "util.mh";\n'
        "int util_scale(int x) { return x * SCALE; }\n"
        "int util_clamp(int x, int lo, int hi) {\n"
        "  if (x < lo) return lo;\n"
        "  if (x > hi) return hi;\n"
        "  return x;\n"
        "}\n"
    ),
    "extra.mc": "int unused_helper(int x) { return x - 1; }\n",
    "main.mc": (
        'include "util.mh";\n'
        "int checksum(int a, int b) { return a * 31 + b; }\n"
        "int main() { print(util_scale(14)); return 0; }\n"
    ),
}
UNITS = ["extra.mc", "main.mc", "util.mc"]
SERIAL = BuildOptions(jobs=1, executor="serial")


def build_history(files=FILES, **options) -> BuildDatabase:
    """Clean build + one edit rebuild: leaves dormant records behind."""
    options.setdefault("stateful", True)
    db = BuildDatabase()
    IncrementalBuilder(
        MemoryFileProvider(files), UNITS, CompilerOptions(**options), db, SERIAL
    ).build(link_output=False)
    edited = dict(files, **{"main.mc": files["main.mc"].replace("14", "21")})
    IncrementalBuilder(
        MemoryFileProvider(edited), UNITS, CompilerOptions(**options), db, SERIAL
    ).build(link_output=False)
    return db


def run_audit(db, files=FILES, *, sample=50, seed=0, **options):
    options.setdefault("stateful", True)
    edited = dict(files, **{"main.mc": files["main.mc"].replace("14", "21")})
    return audit_fingerprint_collisions(
        MemoryFileProvider(edited),
        UNITS,
        CompilerOptions(**options),
        db.live_state,
        sample=sample,
        seed=seed,
    )


class TestCleanAudit:
    def test_healthy_store_confirms_every_sampled_pair(self):
        db = build_history()
        result = run_audit(db)
        assert result.ok
        assert result.audited > 0
        assert result.confirmed == result.audited
        assert result.mismatches == []
        assert result.units  # something actually recompiled
        assert "zero collisions" in result.describe()

    def test_sample_bounds_the_work(self):
        db = build_history()
        small = run_audit(db, sample=1)
        assert small.audited >= 1
        assert len(small.units) <= len(UNITS)

    def test_audit_leaves_live_state_untouched(self):
        db = build_history()
        state = db.live_state
        before = {key: dataclasses.replace(rec) for key, rec in state.records.items()}
        counter = state.build_counter
        run_audit(db)
        assert state.build_counter == counter
        assert set(state.records) == set(before)
        for key, rec in state.records.items():
            assert rec == before[key]

    def test_result_serializes(self):
        payload = run_audit(build_history()).to_dict()
        assert payload["ok"] is True
        assert payload["audited"] == payload["confirmed"]
        assert isinstance(payload["units"], list)


class TestTampering:
    def test_corrupted_fingerprint_out_is_caught(self):
        """Simulate a collision: a dormant record whose stored outcome
        no longer matches reality must surface as a mismatch."""
        db = build_history()
        state = db.live_state
        tampered = 0
        for key, record in state.records.items():
            if record.dormant:
                state.records[key] = dataclasses.replace(
                    record, fingerprint_out="0" * len(record.fingerprint_out)
                )
                tampered += 1
        assert tampered > 0
        result = run_audit(db)
        assert not result.ok
        assert any(m["kind"] == "dormant-bypass" for m in result.mismatches)
        assert "MISMATCH" in result.describe()
        mismatch = result.mismatches[0]
        assert {"kind", "unit", "function", "position", "pass", "detail"} <= set(
            mismatch
        )


class TestPreconditions:
    def test_stateless_options_rejected(self):
        db = build_history()
        with pytest.raises(ValueError, match="stateful"):
            run_audit(db, stateful=False)

    def test_coarse_policy_rejected(self):
        db = build_history()
        with pytest.raises(ValueError, match="fine-grained"):
            run_audit(db, policy=SkipPolicy.COARSE)

    def test_incompatible_state_rejected(self):
        db = build_history(opt_level="O1")
        with pytest.raises(ValueError, match="incompatible"):
            run_audit(db, opt_level="O2")
