"""BuildReport JSON schema: round-trip, describe/JSON consistency, serial fields."""

import json

import pytest

from repro.buildsys.builddb import BuildDatabase
from repro.buildsys.incremental import IncrementalBuilder
from repro.buildsys.parallel import BuildOptions
from repro.buildsys.report import (
    READABLE_REPORT_SCHEMAS,
    REPORT_SCHEMA_VERSION,
    BuildReport,
)
from repro.driver import CompilerOptions
from repro.frontend.includes import MemoryFileProvider

FILES = {
    "lib.mh": "int twice(int x);\n",
    "lib.mc": 'include "lib.mh";\nint twice(int x) { return x * 2; }\n',
    "main.mc": 'include "lib.mh";\nint main() { print(twice(21)); return 0; }\n',
}
UNITS = ["lib.mc", "main.mc"]


def build(files=FILES, db=None, build_options=None, **options):
    return IncrementalBuilder(
        MemoryFileProvider(files),
        UNITS,
        CompilerOptions(**options),
        db if db is not None else BuildDatabase(),
        build_options or BuildOptions(jobs=1, executor="serial"),
    ).build()


class TestSchema:
    def test_round_trip_preserves_payload(self):
        report = build(stateful=True)
        clone = BuildReport.from_json(report.to_json())
        assert clone.to_dict() == report.to_dict()

    def test_schema_mismatch_rejected(self):
        payload = build().to_dict()
        payload["schema"] = REPORT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            BuildReport.from_dict(payload)

    def test_reasons_serialized_for_every_unit(self):
        db = BuildDatabase()
        build(db=db)
        edited = dict(FILES, **{"main.mc": FILES["main.mc"].replace("21", "22")})
        payload = build(edited, db=db).to_dict()
        assert set(payload["reasons"]) == set(UNITS)
        assert payload["reasons"]["main.mc"]["kind"] == "source-changed"
        assert payload["reasons"]["lib.mc"]["kind"] == "up-to-date"

    def test_metrics_embedded(self):
        payload = build(stateful=True).to_dict()
        counters = payload["metrics"]["counters"]
        assert counters["passes.executed"] > 0
        assert "build.total_wall_time" in payload["metrics"]["timings"]

    def test_write_json(self, tmp_path):
        out = tmp_path / "report.json"
        report = build()
        assert report.write_json(out) == out.stat().st_size
        assert json.loads(out.read_text())["schema"] == REPORT_SCHEMA_VERSION

    def test_image_excluded_from_serialization(self):
        report = build()
        assert report.image is not None
        assert report.to_dict()["summary"]["linked"] is True
        assert BuildReport.from_json(report.to_json()).image is None


class TestVersionSkew:
    """The satellite: old payloads load, future payloads fail loudly."""

    def test_current_schema_is_readable(self):
        assert REPORT_SCHEMA_VERSION in READABLE_REPORT_SCHEMAS

    def test_v1_payload_still_loads(self):
        # A pre-history report: no state_bytes, no profile section.
        payload = build(stateful=True).to_dict()
        payload["schema"] = 1
        payload["summary"].pop("state_bytes", None)
        payload.pop("profile", None)
        report = BuildReport.from_dict(payload)
        assert report.state_bytes == 0
        assert report.profile == {}

    def test_v2_round_trips_new_fields(self):
        report = build(stateful=True)
        report.profile = {"schema": 1, "phases": {}, "hotspots": []}
        clone = BuildReport.from_json(report.to_json())
        assert clone.state_bytes == report.state_bytes > 0
        assert clone.profile == report.profile

    def test_future_schema_rejected_with_upgrade_hint(self):
        payload = build().to_dict()
        payload["schema"] = 99
        with pytest.raises(ValueError, match="v99.*newer than this reader"):
            BuildReport.from_dict(payload)

    def test_garbage_schema_rejected(self):
        payload = build().to_dict()
        for schema in (None, "2", -1):
            payload["schema"] = schema
            with pytest.raises(ValueError, match="unreadable"):
                BuildReport.from_dict(payload)


class TestSerialFields:
    """The satellite fix: no 0.0/unset sentinels on the serial path."""

    def test_serial_build_has_meaningful_timings(self):
        summary = build().to_dict()["summary"]
        assert summary["jobs"] == 1 and summary["workers"] == 1
        assert summary["total_wall_time"] > 0.0
        assert summary["scan_time"] > 0.0
        assert summary["compile_phase_time"] > 0.0
        assert summary["compile_wall_time"] > 0.0
        assert summary["parallel_speedup"] == pytest.approx(1.0, rel=0.2)

    def test_noop_build_speedup_is_neutral(self):
        db = BuildDatabase()
        build(db=db)
        summary = build(db=db).to_dict()["summary"]
        assert summary["recompiled"] == 0
        assert summary["parallel_speedup"] == 1.0  # not a 0.0 sentinel

    def test_empty_report_defaults(self):
        report = BuildReport()
        assert report.parallel_speedup == 1.0
        assert report.num_workers == 0


class TestDescribe:
    def test_describe_renders_from_to_dict(self):
        report = build()
        summary = report.to_dict()["summary"]
        text = report.describe()
        assert f"{summary['recompiled']} recompiled" in text
        assert f"{summary['up_to_date']} up-to-date" in text
        assert f"{summary['total_wall_time']:.3f}s" in text

    def test_describe_parallel_block_matches_json(self):
        report = build(
            build_options=BuildOptions(jobs=4, executor="thread"), stateful=True
        )
        summary = report.to_dict()["summary"]
        assert summary["jobs"] == 2  # capped at the dirty-unit count
        text = report.describe()
        assert f"-j {summary['jobs']}" in text
        assert f"{summary['parallel_speedup']:.2f}x" in text
