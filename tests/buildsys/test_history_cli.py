"""End-to-end: reprobuild history / regress / dashboard over real builds."""

import json
import shutil
import time
from types import SimpleNamespace

import pytest

from repro.cli import (
    reprobuild_dashboard_main,
    reprobuild_history_main,
    reprobuild_main,
    reprobuild_regress_main,
)
from repro.obs.history import BuildHistory, default_history_path
from repro.passes.mem2reg import Mem2RegPass

FILES = {
    "util.mh": (
        "const int SCALE = 3;\n"
        "int util_scale(int x);\n"
        "int util_clamp(int x, int lo, int hi);\n"
    ),
    "util.mc": (
        'include "util.mh";\n'
        "int util_scale(int x) { return x * SCALE; }\n"
        "int util_clamp(int x, int lo, int hi) {\n"
        "  if (x < lo) return lo;\n"
        "  if (x > hi) return hi;\n"
        "  return x;\n"
        "}\n"
    ),
    "extra.mc": "int unused_helper(int x) { return x - 1; }\n",
    "main.mc": (
        'include "util.mh";\n'
        "int checksum(int a, int b) { return a * 31 + b; }\n"
        "int main() { print(util_scale(14)); return 0; }\n"
    ),
}


def write_project(root, revision: int = 0) -> None:
    root.mkdir(exist_ok=True)
    files = dict(
        FILES, **{"main.mc": FILES["main.mc"].replace("14", str(14 + 7 * revision))}
    )
    for name, text in files.items():
        (root / name).write_text(text)


def run_build(proj, db, revision: int, *extra: str) -> None:
    """One stateful serial build of the given project revision."""
    write_project(proj, revision)
    rc = reprobuild_main(
        [str(proj), "--stateful", "--db", str(db), "-j", "1",
         "--label", f"rev-{revision}", *extra]
    )
    assert rc == 0


@pytest.fixture(scope="module")
def trace(tmp_path_factory):
    """A clean build plus four incremental edit rebuilds."""
    root = tmp_path_factory.mktemp("trace")
    proj, db = root / "proj", root / "build.reprodb"
    for revision in range(5):
        run_build(proj, db, revision)
    return SimpleNamespace(
        root=root, proj=proj, db=db, history=default_history_path(db)
    )


class TestHistoryCommand:
    def test_table_lists_every_build(self, trace, capsys):
        assert reprobuild_history_main(["--db", str(trace.db)]) == 0
        out, err = capsys.readouterr()
        lines = out.strip().splitlines()
        assert "seq" in lines[0] and "bypass%" in lines[0]
        assert len(lines) == 2 + 5  # header + rule + five builds
        assert "rev-0" in out and "rev-4" in out
        assert "5 build(s) loaded" in err

    def test_json_mode_emits_full_records(self, trace, capsys):
        assert reprobuild_history_main(["--db", str(trace.db), "--json"]) == 0
        out, _ = capsys.readouterr()
        records = [json.loads(line) for line in out.strip().splitlines()]
        assert [r["seq"] for r in records] == [1, 2, 3, 4, 5]
        assert records[0]["label"] == "rev-0"
        assert records[0]["report"]["schema"] == 2

    def test_last_n_limits_the_table(self, trace, capsys):
        assert reprobuild_history_main(["--db", str(trace.db), "-n", "2"]) == 0
        out, _ = capsys.readouterr()
        assert "rev-3" in out and "rev-4" in out and "rev-0" not in out

    def test_empty_history_is_an_error(self, tmp_path, capsys):
        rc = reprobuild_history_main(["--db", str(tmp_path / "none.reprodb")])
        assert rc == 1
        assert "no builds recorded" in capsys.readouterr().err

    def test_no_history_flag_skips_the_append(self, tmp_path):
        proj, db = tmp_path / "proj", tmp_path / "build.reprodb"
        write_project(proj)
        rc = reprobuild_main(
            [str(proj), "--stateful", "--db", str(db), "-j", "1", "--no-history"]
        )
        assert rc == 0
        assert not default_history_path(db).exists()

    def test_custom_history_path(self, tmp_path):
        proj, db = tmp_path / "proj", tmp_path / "build.reprodb"
        custom = tmp_path / "elsewhere.jsonl"
        write_project(proj)
        rc = reprobuild_main(
            [str(proj), "--stateful", "--db", str(db), "-j", "1",
             "--history", str(custom)]
        )
        assert rc == 0
        assert custom.exists() and not default_history_path(db).exists()


class TestRegressCommand:
    def test_quiet_on_a_clean_trace(self, trace, capsys):
        assert reprobuild_regress_main(["--db", str(trace.db)]) == 0
        assert "no drift" in capsys.readouterr().out

    def test_flags_injected_pass_slowdown(self, trace, tmp_path, monkeypatch, capsys):
        """The acceptance check: an artificial slowdown in one pass must
        trip the per-pass wall detector on the very next build."""
        proj, db = tmp_path / "proj", tmp_path / "build.reprodb"
        shutil.copy(trace.db, db)
        shutil.copy(trace.history, default_history_path(db))

        original = Mem2RegPass.run_on_function

        def slow(self, fn, module):
            time.sleep(0.01)
            return original(self, fn, module)

        monkeypatch.setattr(Mem2RegPass, "run_on_function", slow)
        run_build(proj, db, 5)  # -j 1: the patch applies in-process
        monkeypatch.undo()

        assert reprobuild_regress_main(["--db", str(db)]) == 1
        out = capsys.readouterr().out
        assert "pass-wall" in out
        assert "mem2reg" in out

    def test_audit_confirms_zero_collisions(self, trace, capsys):
        rc = reprobuild_regress_main(
            [str(trace.proj), "--db", str(trace.db), "--audit", "--sample", "20"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "zero collisions" in out
        audited = int(out.split("collision audit: ")[1].split()[0])
        assert audited > 0

    def test_audit_without_directory_is_a_usage_error(self, trace, capsys):
        rc = reprobuild_regress_main(["--db", str(trace.db), "--audit"])
        assert rc == 2
        assert "needs the project directory" in capsys.readouterr().err


class TestDashboardCommand:
    def test_renders_selfcontained_page(self, trace, tmp_path, capsys):
        out_html = tmp_path / "dashboard.html"
        rc = reprobuild_dashboard_main(["--db", str(trace.db), "-o", str(out_html)])
        assert rc == 0
        page = out_html.read_text()
        assert "<svg" in page and "</html>" in page
        assert "rev-4" in page
        assert "no drift across" in page  # detect_drift ran and was clean
        assert "http://" not in page and "https://" not in page
        assert "<script" not in page

    def test_empty_history_is_an_error(self, tmp_path, capsys):
        rc = reprobuild_dashboard_main(
            ["--db", str(tmp_path / "none.reprodb"), "-o", str(tmp_path / "x.html")]
        )
        assert rc == 1
        assert not (tmp_path / "x.html").exists()


class TestProfileFlag:
    def test_profile_writes_pstats_and_history_payload(self, tmp_path, capsys):
        import pstats

        proj, db = tmp_path / "proj", tmp_path / "build.reprodb"
        pstats_dir = tmp_path / "prof"
        write_project(proj)
        rc = reprobuild_main(
            [str(proj), "--stateful", "--db", str(db), "-j", "1",
             "--profile", "--profile-dir", str(pstats_dir)]
        )
        assert rc == 0
        files = sorted(p.name for p in pstats_dir.glob("*.pstats"))
        assert "compile.pstats" in files and "link.pstats" in files
        for path in pstats_dir.glob("*.pstats"):
            assert pstats.Stats(str(path)).total_calls > 0
        (record,), _ = BuildHistory(default_history_path(db)).read()
        assert record.profile["schema"] == 1
        assert record.profile["hotspots"]

    def test_profile_is_off_by_default(self, trace):
        records, _ = BuildHistory(trace.history).read()
        assert all(record.profile == {} for record in records)
