"""Workload generator and edit model tests."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.buildsys.builddb import BuildDatabase
from repro.buildsys.incremental import IncrementalBuilder
from repro.driver import CompilerOptions
from repro.vm.machine import VirtualMachine
from repro.workload.edits import (
    DEFAULT_EDIT_MIX,
    Edit,
    EditKind,
    apply_edit,
    random_edit_sequence,
)
from repro.workload.generator import generate_project
from repro.workload.spec import PRESETS, make_preset, make_spec


class TestSpec:
    def test_presets_exist(self):
        for preset in PRESETS:
            spec = make_preset(preset)
            assert spec.modules

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            make_preset("galactic")

    def test_spec_deterministic(self):
        assert make_preset("small", seed=5) == make_preset("small", seed=5)
        assert make_preset("small", seed=5) != make_preset("small", seed=6)

    def test_imports_form_dag(self):
        spec = make_preset("large", seed=2)
        names = {}
        for module in spec.modules:
            names[module.name] = module.index
            for imported in module.imports:
                assert names[imported] < module.index


class TestGenerator:
    def test_generation_deterministic(self):
        a = generate_project(make_preset("small", seed=9))
        b = generate_project(make_preset("small", seed=9))
        assert a.files == b.files

    def test_projects_compile_and_run(self):
        for seed in (1, 2, 3):
            project = generate_project(make_preset("tiny", seed=seed))
            report = IncrementalBuilder(
                project.provider(), project.unit_paths, CompilerOptions(opt_level="O2")
            ).build()
            result = VirtualMachine(report.image).run()
            assert not result.trapped, f"seed {seed}: {result.trap_message}"

    def test_structure(self):
        project = generate_project(make_preset("small", seed=1))
        assert "main.mc" in project.files
        assert len(project.unit_paths) == 5  # 4 modules + main
        assert len(project.header_paths) == 4
        assert project.count_functions() > 20

    def test_body_seed_changes_exactly_one_function(self):
        spec = make_preset("small", seed=1)
        module = spec.modules[1]
        target = module.functions[2]
        edited = apply_edit(spec, Edit(EditKind.BODY, module.name, target.name))
        before = generate_project(spec).files
        after = generate_project(edited).files
        changed = [p for p in before if before[p] != after[p]]
        assert changed == [f"{module.name}.mc"]

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_arbitrary_seeds_run_clean(self, seed):
        spec = make_spec("fuzz", num_modules=2, functions_per_module=3, seed=seed)
        project = generate_project(spec)
        report = IncrementalBuilder(
            project.provider(), project.unit_paths, CompilerOptions(opt_level="O1")
        ).build()
        result = VirtualMachine(report.image).run()
        assert not result.trapped, result.trap_message


class TestEdits:
    def test_comment_edit_changes_only_comments(self):
        spec = make_preset("small", seed=1)
        edited = apply_edit(spec, Edit(EditKind.COMMENT, "mod2"))
        before = generate_project(spec).files
        after = generate_project(edited).files
        assert before["mod2.mc"] != after["mod2.mc"]
        # Stripping comment lines, the code is identical.
        strip = lambda t: "\n".join(
            l for l in t.splitlines() if not l.strip().startswith("//")
        )
        assert strip(before["mod2.mc"]) == strip(after["mod2.mc"])

    def test_header_const_edit_changes_header(self):
        spec = make_preset("small", seed=1)
        edited = apply_edit(spec, Edit(EditKind.HEADER_CONST, "mod0"))
        before = generate_project(spec).files
        after = generate_project(edited).files
        assert before["mod0.mh"] != after["mod0.mh"]

    def test_add_function_appends(self):
        spec = make_preset("small", seed=1)
        edited = apply_edit(spec, Edit(EditKind.ADD_FUNCTION, "mod1"))
        assert len(edited.module_by_name("mod1").functions) == len(
            spec.module_by_name("mod1").functions
        ) + 1
        project = generate_project(edited)
        report = IncrementalBuilder(
            project.provider(), project.unit_paths, CompilerOptions(opt_level="O1")
        ).build()
        assert not VirtualMachine(report.image).run().trapped

    def test_const_tweak_changes_one_literal(self):
        spec = make_preset("small", seed=1)
        module = spec.modules[0]
        fn = module.functions[0]
        edited = apply_edit(spec, Edit(EditKind.CONST_TWEAK, module.name, fn.name))
        before = generate_project(spec).files[f"{module.name}.mc"]
        after = generate_project(edited).files[f"{module.name}.mc"]
        assert before != after
        # whole-file difference is a single line
        diffs = [
            (a, b) for a, b in zip(before.splitlines(), after.splitlines()) if a != b
        ]
        assert len(diffs) == 1

    def test_edit_sequence_deterministic(self):
        spec = make_preset("small", seed=1)
        a = random_edit_sequence(spec, 10, seed=4)
        b = random_edit_sequence(spec, 10, seed=4)
        assert a == b
        assert a != random_edit_sequence(spec, 10, seed=5)

    def test_edit_sequence_applies_cleanly(self):
        spec = make_preset("tiny", seed=1)
        for edit in random_edit_sequence(spec, 12, seed=2):
            spec = apply_edit(spec, edit)
        project = generate_project(spec)
        report = IncrementalBuilder(
            project.provider(), project.unit_paths, CompilerOptions(opt_level="O1")
        ).build()
        assert not VirtualMachine(report.image).run().trapped

    def test_mix_weights_cover_all_kinds(self):
        kinds = {k for k, _ in DEFAULT_EDIT_MIX}
        assert kinds == set(EditKind)

    def test_describe(self):
        assert Edit(EditKind.BODY, "mod1", "mod1_f2").describe() == "body@mod1.mod1_f2"
        assert Edit(EditKind.COMMENT, "mod1").describe() == "comment@mod1"
