"""The shipped examples must keep running (they are executable docs)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "program output: [0, 1, 7, 2, 5, 8]" in out
        assert "byte-identical" in out
        assert "bypassed" in out

    def test_inspect_pipeline(self):
        out = run_example("inspect_pipeline.py")
        assert "define @dot3" in out
        assert "mem2reg" in out and "CHANGED" in out and "dormant" in out
        assert "dormancy records" in out

    def test_toolchain_tour(self):
        out = run_example("toolchain_tour.py")
        assert "int gcd(int a, int b)" in out  # formatter output
        assert "object tour.mc" in out  # disassembly (truncated to 25 lines)
        assert "hottest function" in out  # profiler

    def test_editloop_tiny(self):
        out = run_example("editloop.py", "tiny", "2")
        assert "clean build" in out
        assert "TOTAL" in out
        assert "end-to-end" in out
