"""The fault-injection harness itself: plans, triggers, crash semantics."""

import errno
import os

import pytest

from repro.persist import atomic_write, io
from repro.testing import (
    ERRNO,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    count_io_ops,
    inject_faults,
)


class TestFaultPlan:
    def test_kill_fires_on_exact_index(self):
        spec = FaultSpec("kill", "write", index=2)
        plan = FaultPlan([spec])
        assert plan.consult("write") is None      # 0
        assert plan.consult("fsync") is None      # not a write
        assert plan.consult("write") is None      # 1
        assert plan.consult("write") is spec      # 2 fires
        assert plan.consult("write") is None      # 3: one-shot

    def test_errno_fires_for_count_consecutive_calls(self):
        plan = FaultPlan([FaultSpec(ERRNO, "write", index=1, count=2)])
        fired = [plan.consult("write") is not None for _ in range(5)]
        assert fired == [False, True, True, False, False]

    def test_wildcard_op_counts_all_mutating_calls(self):
        plan = FaultPlan([FaultSpec("kill", None, index=3)])
        ops = ["open", "write", "fsync", "close"]
        assert [plan.consult(op) is not None for op in ops] == [
            False, False, False, True
        ]

    def test_seeded_plans_are_reproducible(self):
        a = FaultPlan.seeded(42).specs[0]
        b = FaultPlan.seeded(42).specs[0]
        assert (a.kind, a.op, a.index, a.errno_code, a.count) == (
            b.kind, b.op, b.index, b.errno_code, b.count
        )
        c = FaultPlan.seeded(43).specs[0]
        assert (a.kind, a.op, a.index) != (c.kind, c.op, c.index) or a.errno_code != c.errno_code


class TestFaultBackend:
    def test_count_io_ops_enumerates_the_schedule(self, tmp_path):
        backend = count_io_ops(lambda: atomic_write(tmp_path / "f", b"data"))
        ops = [op for op, _ in backend.log]
        assert ops.count("replace") == 1
        assert ops.count("write") >= 1
        assert backend.total_ops == len(backend.log) >= 5
        assert (tmp_path / "f").is_file()  # fault-free run really ran

    def test_injected_errno_is_a_real_oserror(self, tmp_path):
        with inject_faults(FaultPlan.errno_at(0, code=errno.ENOSPC, op="open")):
            with pytest.raises(OSError) as excinfo:
                io.backend().open(str(tmp_path / "f"), os.O_WRONLY | os.O_CREAT)
        assert excinfo.value.errno == errno.ENOSPC

    def test_injected_crash_skips_except_exception(self, tmp_path):
        # A simulated kill must not be swallowed by broad error handling
        # in the code under test, exactly like a real SIGKILL.
        def swallowing_writer():
            try:
                atomic_write(tmp_path / "f", b"data")
            except Exception:  # noqa: BLE001 - the point of the test
                return "swallowed"
            return "wrote"

        with inject_faults(FaultPlan.kill_at(0, "write")):
            with pytest.raises(InjectedCrash):
                swallowing_writer()

    def test_kill_after_performs_the_operation_first(self, tmp_path):
        path = tmp_path / "f"
        with inject_faults(FaultPlan.kill_after(0, "replace")):
            with pytest.raises(InjectedCrash):
                atomic_write(path, b"data")
        # The rename happened before the crash: new content is visible.
        from repro.persist import read_artifact

        assert read_artifact(path) == b"data"

    def test_backend_restored_after_block(self, tmp_path):
        original = io.backend()
        with inject_faults(FaultPlan()):
            assert io.backend() is not original
        assert io.backend() is original

    def test_sleep_is_recorded_not_slept(self):
        import time

        with inject_faults(FaultPlan()) as backend:
            start = time.perf_counter()
            io.backend().sleep(30.0)
            assert time.perf_counter() - start < 1.0
        assert backend.slept == 30.0
