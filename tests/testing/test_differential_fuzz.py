"""Differential-correctness fuzzing: stateful == stateless, always.

Each trace generates a project, applies a random edit sequence, and
after every step builds it three ways — stateless from scratch,
stateful incrementally at -j 1, and stateful incrementally at -j 4 —
asserting bit-identical linked images, identical per-unit objects,
identical final dormancy-record populations, and consistent pass-run
totals.  Twenty-five seeds is the floor demanded by the issue.
"""

import pytest

from repro.testing import run_differential_trace

#: The fixed corpus: 25 seeds, as the acceptance criteria require.
SEEDS = list(range(1, 26))


@pytest.mark.parametrize("seed", SEEDS)
def test_seeded_trace_converges(seed, tmp_path):
    result = run_differential_trace(
        preset="tiny",
        seed=seed,
        num_edits=3,
        jobs=(1, 4),
        executor="thread",
        workdir=tmp_path,
    )
    assert result.ok, result.describe()
    assert result.steps == 4  # initial build + 3 edits
    assert result.objects_compared > 0


@pytest.mark.parametrize("seed", [3, 11, 19])
def test_trace_with_vm_execution(seed, tmp_path):
    # A deeper check on a few seeds: the linked images must not just be
    # bit-identical, they must *behave* identically under the VM.
    result = run_differential_trace(
        preset="tiny",
        seed=seed,
        num_edits=2,
        jobs=(1, 4),
        executor="thread",
        workdir=tmp_path,
        execute=True,
    )
    assert result.ok, result.describe()


@pytest.mark.parametrize("opt_level", ["O0", "O1"])
def test_trace_at_other_opt_levels(opt_level, tmp_path):
    # The law must hold at every pipeline the compiler ships, not just
    # the default O2 (different pipelines -> different bypass records).
    result = run_differential_trace(
        preset="tiny",
        seed=7,
        num_edits=2,
        jobs=(1, 4),
        executor="thread",
        opt_level=opt_level,
        workdir=tmp_path,
    )
    assert result.ok, result.describe()


def test_fuzzer_cli_entry_point(capsys):
    # The CI job drives this module directly; keep that path honest.
    from repro.testing.differential import main

    rc = main(["--traces", "2", "--seed", "1", "--jobs", "1,4", "--edits", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "2/2" in out
