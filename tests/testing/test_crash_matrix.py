"""The crash-recovery matrix: every artifact, every fault point.

For each persistent artifact (build DB with embedded compiler state,
standalone state file, history JSONL, history index sidecar) the write
path is first enumerated fault-free, then replayed once per IO
operation with a crash (or torn write, or IO error) injected exactly
there.  After every injected fault, reopening the artifact must yield
either the last good version, the complete new version, or a cleanly
diagnosed full-rebuild fallback — never an unhandled exception.
"""

import errno

import pytest

from repro.buildsys.builddb import BuildDatabase, CorruptDatabaseError
from repro.buildsys.deps import DependencySnapshot, content_digest
from repro.core.state import CompilerState
from repro.obs.history import BuildHistory, HistoryRecord
from repro.testing import (
    KILL,
    KILL_AFTER,
    TORN,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    count_io_ops,
    inject_faults,
)

FAULT_KINDS = (KILL, KILL_AFTER, TORN)


def snapshot_of(path, text):
    return DependencySnapshot(path, content_digest(text), {})


def make_db(units):
    db = BuildDatabase()
    for name in units:
        db.record_unit(snapshot_of(name, f"source of {name}"), "{}")
    state = CompilerState(pipeline_signature="p1|p2")
    state.begin_build()
    for i, name in enumerate(units):
        state.remember(i % 3, f"fp-{name}", True, f"fp-{name}")
    db.live_state = state
    return db


def make_state(n):
    state = CompilerState(pipeline_signature="sig")
    state.begin_build()
    for i in range(n):
        state.remember(i, f"fp{i}", i % 2 == 0, f"fp{i}'")
    return state


def make_record(seq):
    return HistoryRecord(
        seq=seq,
        timestamp=float(seq),
        label=f"build-{seq}",
        report={"summary": {"recompiled": seq, "total_wall_time": 0.1 * seq}},
    )


def run_faulted(scenario, plan):
    """Run ``scenario`` under ``plan``; injected faults are 'the crash'."""
    with inject_faults(plan) as backend:
        try:
            scenario()
        except (InjectedCrash, OSError):
            pass
    return backend


def sweep_plans(total_ops):
    """Every (kind, index) crash plus errno storms at every index."""
    for index in range(total_ops):
        for kind in FAULT_KINDS:
            yield f"{kind}@{index}", FaultPlan([FaultSpec(kind, None, index)])
        # count=99 defeats the bounded retry, so the error surfaces.
        yield f"eio@{index}", FaultPlan.errno_at(index, code=errno.EIO, count=99)
        yield f"enospc@{index}", FaultPlan.errno_at(index, code=errno.ENOSPC, count=99)


class TestBuildDatabaseMatrix:
    def test_every_fault_point_recovers(self, tmp_path):
        path = tmp_path / "build.reprodb"
        old = make_db(["a.mc", "b.mc"])
        new = make_db(["a.mc", "b.mc", "c.mc"])

        old.save(path)
        total = count_io_ops(lambda: new.save(path)).total_ops
        assert total >= 5

        checked = 0
        for label, plan in sweep_plans(total):
            old.save(path)
            run_faulted(lambda: new.save(path), plan)

            db, corruption = BuildDatabase.load_or_empty(path)
            units = set(db.units)
            if corruption is not None:
                # Diagnosed corruption -> clean full rebuild, never a crash.
                assert units == set(), label
            else:
                assert units in (set(old.units), set(new.units)), label
                if units == set(new.units):
                    assert db.live_state is not None
                    assert len(db.live_state.records) == len(new.live_state.records)
            checked += 1
        assert checked == total * 5

    def test_strict_load_never_raises_untyped(self, tmp_path):
        # The matrix again, but through the strict loader: anything it
        # raises must be the one typed error the CLI knows about.
        path = tmp_path / "build.reprodb"
        old = make_db(["a.mc"])
        new = make_db(["a.mc", "b.mc"])
        old.save(path)
        total = count_io_ops(lambda: new.save(path)).total_ops
        for label, plan in sweep_plans(total):
            old.save(path)
            run_faulted(lambda: new.save(path), plan)
            try:
                BuildDatabase.load(path)
            except CorruptDatabaseError:
                pass  # typed, catchable, recoverable
            # anything else propagates and fails the test


class TestStateFileMatrix:
    def test_every_fault_point_recovers(self, tmp_path):
        path = tmp_path / "state.json"
        old, new = make_state(4), make_state(7)

        old.save(path)
        total = count_io_ops(lambda: new.save(path)).total_ops

        for label, plan in sweep_plans(total):
            old.save(path)
            run_faulted(lambda: new.save(path), plan)
            loaded = CompilerState.load(path, pipeline_signature="sig")
            # Last-good, fully-new, or fresh (the lenient-cache fallback).
            assert loaded.num_records in (4, 7, 0), label


class TestHistoryMatrix:
    def history_with(self, path, n):
        history = BuildHistory(path)
        for seq in range(1, n + 1):
            history.append(make_record(seq))
        return history

    def test_every_fault_point_preserves_prefix(self, tmp_path):
        sample = self.history_with(tmp_path / "enum.jsonl", 2)
        total = count_io_ops(lambda: sample.append(make_record(3))).total_ops
        assert total >= 3  # append + index rewrite

        case = 0
        for label, plan in sweep_plans(total):
            case += 1
            history = self.history_with(tmp_path / f"h{case}.jsonl", 2)
            run_faulted(lambda: history.append(make_record(3)), plan)

            records, stats = history.read()  # must never raise
            seqs = [r.seq for r in records]
            # Appends never touch earlier records: the old prefix
            # survives verbatim; the new record is all-or-nothing
            # (a torn final line is dropped and reported).
            assert seqs in ([1, 2], [1, 2, 3]), (label, seqs)
            assert stats.corrupt == 0, label

    def test_index_sidecar_faults_never_poison_tail(self, tmp_path):
        sample = self.history_with(tmp_path / "enum.jsonl", 2)
        total = count_io_ops(lambda: sample.append(make_record(3))).total_ops

        case = 0
        for label, plan in sweep_plans(total):
            case += 1
            history = self.history_with(tmp_path / f"i{case}.jsonl", 2)
            run_faulted(lambda: history.append(make_record(3)), plan)

            # Whatever happened to the sidecar, tail() must agree with
            # a full scan of the JSONL (the index is a pure cache).
            records = history.records()
            assert [r.seq for r in history.tail(2)] == [r.seq for r in records[-2:]], label
            assert history.next_seq() == (records[-1].seq + 1 if records else 1), label


class TestEndToEndCrashRecovery:
    """A real reprobuild killed mid-persist, then run again."""

    @pytest.fixture()
    def project_dir(self, tmp_path):
        from repro.workload.generator import generate_project
        from repro.workload.spec import make_preset

        generate_project(make_preset("tiny", seed=3)).write_to(tmp_path / "proj")
        return tmp_path

    def test_build_killed_during_db_save_rebuilds_cleanly(self, project_dir, capsys):
        from repro.cli import reprobuild_main

        db_path = project_dir / "build.reprodb"
        argv = [
            str(project_dir / "proj"), "--db", str(db_path),
            "--stateful", "--no-history", "--no-lock", "-j", "1",
        ]
        assert reprobuild_main(argv) == 0

        # Kill every nth write across a full rebuild's persistence...
        for index in range(0, 12, 3):
            with inject_faults(FaultPlan.kill_at(index, "write")):
                try:
                    reprobuild_main(argv)
                except InjectedCrash:
                    pass
            capsys.readouterr()
            # ...and the next build must always succeed without help.
            assert reprobuild_main(argv) == 0, f"write#{index}"
            err = capsys.readouterr().err
            assert "Traceback" not in err
