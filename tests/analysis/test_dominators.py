"""Dominator tree and dominance frontier tests."""

from repro.ir import (
    Function,
    FunctionSig,
    I64,
    IRBuilder,
    const_i1,
    const_i64,
    parse_module,
)
from repro.analysis.dominators import DominatorTree


def diamond():
    """entry -> (left | right) -> merge"""
    fn = Function("f", FunctionSig((), I64))
    entry = fn.add_block("entry")
    left = fn.add_block("left")
    right = fn.add_block("right")
    merge = fn.add_block("merge")
    IRBuilder(fn, entry).cbr(const_i1(True), left, right)
    IRBuilder(fn, left).br(merge)
    IRBuilder(fn, right).br(merge)
    IRBuilder(fn, merge).ret(const_i64(0))
    return fn, entry, left, right, merge


def loop_cfg():
    """entry -> header <-> body; header -> exit"""
    fn = Function("f", FunctionSig((), I64))
    entry = fn.add_block("entry")
    header = fn.add_block("header")
    body = fn.add_block("body")
    exit_ = fn.add_block("exit")
    IRBuilder(fn, entry).br(header)
    IRBuilder(fn, header).cbr(const_i1(True), body, exit_)
    IRBuilder(fn, body).br(header)
    IRBuilder(fn, exit_).ret(const_i64(0))
    return fn, entry, header, body, exit_


class TestDominators:
    def test_diamond_idoms(self):
        fn, entry, left, right, merge = diamond()
        dt = DominatorTree.compute(fn)
        assert dt.immediate_dominator(entry) is None
        assert dt.immediate_dominator(left) is entry
        assert dt.immediate_dominator(right) is entry
        assert dt.immediate_dominator(merge) is entry  # not left/right!

    def test_dominates_reflexive_and_transitive(self):
        fn, entry, left, right, merge = diamond()
        dt = DominatorTree.compute(fn)
        assert dt.dominates_block(entry, entry)
        assert dt.dominates_block(entry, merge)
        assert not dt.dominates_block(left, merge)
        assert not dt.dominates_block(merge, entry)
        assert dt.strictly_dominates(entry, merge)
        assert not dt.strictly_dominates(merge, merge)

    def test_loop_idoms(self):
        fn, entry, header, body, exit_ = loop_cfg()
        dt = DominatorTree.compute(fn)
        assert dt.immediate_dominator(header) is entry
        assert dt.immediate_dominator(body) is header
        assert dt.immediate_dominator(exit_) is header
        assert dt.dominates_block(header, body)
        assert not dt.dominates_block(body, exit_)

    def test_unreachable_block(self):
        fn, *_ = diamond()
        dead = fn.add_block("dead")
        IRBuilder(fn, dead).ret(const_i64(1))
        dt = DominatorTree.compute(fn)
        assert not dt.is_reachable(dead)
        assert not dt.dominates_block(fn.entry, dead)

    def test_children_partition(self):
        fn, entry, left, right, merge = diamond()
        dt = DominatorTree.compute(fn)
        assert set(dt.children[entry]) == {left, right, merge}

    def test_dfs_preorder_starts_at_entry(self):
        fn, entry, *_ = diamond()
        dt = DominatorTree.compute(fn)
        order = dt.dfs_preorder()
        assert order[0] is entry
        assert len(order) == 4


class TestDominanceFrontiers:
    def test_diamond_frontiers(self):
        fn, entry, left, right, merge = diamond()
        dt = DominatorTree.compute(fn)
        df = dt.dominance_frontiers()
        assert df[left] == {merge}
        assert df[right] == {merge}
        assert df[entry] == set()
        assert df[merge] == set()

    def test_loop_frontier_contains_header(self):
        fn, entry, header, body, exit_ = loop_cfg()
        dt = DominatorTree.compute(fn)
        df = dt.dominance_frontiers()
        assert header in df[body]
        assert header in df[header]  # header's own frontier via the loop
