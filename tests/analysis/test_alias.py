"""Alias analysis tests."""

from repro.analysis.alias import AliasResult, classify_pointer, may_alias
from repro.ir import (
    AllocaInst,
    Function,
    FunctionSig,
    GlobalAddr,
    I64,
    IRBuilder,
    PTR,
    const_i64,
)


def make_fn_with_builder():
    fn = Function("f", FunctionSig((PTR, PTR), I64), ["p", "q"])
    builder = IRBuilder(fn, fn.add_block("entry"))
    return fn, builder


class TestClassify:
    def test_alloca_root(self):
        fn, b = make_fn_with_builder()
        a = b.alloca(4)
        info = classify_pointer(a)
        assert info.kind == "alloca" and info.root is a and info.offset == 0

    def test_gep_constant_offsets_accumulate(self):
        fn, b = make_fn_with_builder()
        a = b.alloca(8)
        g1 = b.gep(a, const_i64(2))
        g2 = b.gep(g1, const_i64(3))
        info = classify_pointer(g2)
        assert info.root is a and info.offset == 5

    def test_gep_variable_offset_unknown(self):
        fn, b = make_fn_with_builder()
        a = b.alloca(8)
        g = b.gep(a, fn.args[0])  # ptr arg misused as index: still variable
        info = classify_pointer(g)
        assert info.root is a and info.offset is None

    def test_global_root(self):
        info = classify_pointer(GlobalAddr("sym"))
        assert info.kind == "global" and info.root == "sym"

    def test_argument_root(self):
        fn, b = make_fn_with_builder()
        info = classify_pointer(fn.args[0])
        assert info.kind == "argument"


class TestMayAlias:
    def test_distinct_allocas(self):
        fn, b = make_fn_with_builder()
        a1, a2 = b.alloca(4), b.alloca(4)
        assert may_alias(a1, a2) is AliasResult.NO_ALIAS

    def test_same_alloca_same_offset(self):
        fn, b = make_fn_with_builder()
        a = b.alloca(4)
        g1 = b.gep(a, const_i64(1))
        g2 = b.gep(a, const_i64(1))
        assert may_alias(g1, g2) is AliasResult.MUST_ALIAS

    def test_same_alloca_different_offsets(self):
        fn, b = make_fn_with_builder()
        a = b.alloca(4)
        assert may_alias(b.gep(a, const_i64(0)), b.gep(a, const_i64(1))) is AliasResult.NO_ALIAS

    def test_same_alloca_variable_offset(self):
        fn, b = make_fn_with_builder()
        a = b.alloca(4)
        var = b.load(I64, b.alloca(1))
        assert may_alias(b.gep(a, var), b.gep(a, const_i64(1))) is AliasResult.MAY_ALIAS

    def test_alloca_vs_global(self):
        fn, b = make_fn_with_builder()
        assert may_alias(b.alloca(2), GlobalAddr("g")) is AliasResult.NO_ALIAS

    def test_distinct_globals(self):
        assert may_alias(GlobalAddr("g"), GlobalAddr("h")) is AliasResult.NO_ALIAS

    def test_same_global(self):
        assert may_alias(GlobalAddr("g"), GlobalAddr("g")) is AliasResult.MUST_ALIAS

    def test_argument_vs_global(self):
        fn, b = make_fn_with_builder()
        assert may_alias(fn.args[0], GlobalAddr("g")) is AliasResult.MAY_ALIAS

    def test_argument_vs_private_alloca(self):
        fn, b = make_fn_with_builder()
        a = b.alloca(4)
        b.store(const_i64(1), a)  # address does not escape
        assert may_alias(fn.args[0], a) is AliasResult.NO_ALIAS

    def test_argument_vs_escaped_alloca(self):
        from repro.ir import FunctionSig as Sig

        fn, b = make_fn_with_builder()
        a = b.alloca(4)
        b.call("taker", Sig((PTR,), I64), [a])  # address escapes
        assert may_alias(fn.args[0], a) is AliasResult.MAY_ALIAS

    def test_two_arguments(self):
        fn, b = make_fn_with_builder()
        assert may_alias(fn.args[0], fn.args[1]) is AliasResult.MAY_ALIAS
