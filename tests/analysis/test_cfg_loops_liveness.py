"""CFG traversal, natural loop, liveness, call graph, postdom tests."""

from repro.analysis.cfg import postorder, reachable_blocks, reverse_postorder
from repro.analysis.callgraph import CallGraph
from repro.analysis.liveness import compute_liveness
from repro.analysis.loops import find_natural_loops, loop_depths
from repro.analysis.postdominators import PostDominatorTree
from repro.ir import (
    Function,
    FunctionSig,
    I64,
    IRBuilder,
    const_i1,
    const_i64,
)
from tests.conftest import lower


def loopy_fn():
    fn = Function("f", FunctionSig((I64,), I64), ["n"])
    entry = fn.add_block("entry")
    header = fn.add_block("header")
    body = fn.add_block("body")
    exit_ = fn.add_block("exit")
    b = IRBuilder(fn, entry)
    b.br(header)
    b.set_block(header)
    phi = b.phi(I64)
    phi.add_incoming(const_i64(0), entry)
    from repro.ir import ICmpPred

    cond = b.icmp(ICmpPred.SLT, phi, fn.args[0])
    b.cbr(cond, body, exit_)
    b.set_block(body)
    nxt = b.add(phi, const_i64(1))
    phi.add_incoming(nxt, body)
    b.br(header)
    b.set_block(exit_)
    b.ret(phi)
    return fn, entry, header, body, exit_, phi, nxt


class TestCFG:
    def test_reachable_excludes_orphans(self):
        fn, entry, header, body, exit_, *_ = loopy_fn()
        dead = fn.add_block("dead")
        IRBuilder(fn, dead).ret(const_i64(0))
        reach = reachable_blocks(fn)
        assert dead not in reach
        assert reach == {entry, header, body, exit_}

    def test_rpo_parents_first(self):
        fn, entry, header, body, exit_, *_ = loopy_fn()
        rpo = reverse_postorder(fn)
        assert rpo.index(entry) < rpo.index(header)
        assert rpo.index(header) < rpo.index(body)
        assert rpo.index(header) < rpo.index(exit_)

    def test_postorder_is_reverse_of_rpo(self):
        fn, *_ = loopy_fn()
        assert list(reversed(postorder(fn))) == reverse_postorder(fn)


class TestLoops:
    def test_single_loop_detected(self):
        fn, entry, header, body, exit_, *_ = loopy_fn()
        loops = find_natural_loops(fn)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header is header
        assert loop.blocks == {header, body}
        assert loop.latches == [body]

    def test_exit_edges(self):
        fn, entry, header, body, exit_, *_ = loopy_fn()
        loop = find_natural_loops(fn)[0]
        assert loop.exit_edges() == [(header, exit_)]

    def test_loop_depths(self):
        fn, entry, header, body, exit_, *_ = loopy_fn()
        depths = loop_depths(fn)
        assert depths[header] == 1 and depths[body] == 1
        assert depths[entry] == 0 and depths[exit_] == 0

    def test_nested_loops_from_source(self):
        module = lower(
            """
            int f(int n) {
              int acc = 0;
              for (int i = 0; i < n; ++i)
                for (int j = 0; j < i; ++j)
                  acc += i * j;
              return acc;
            }
            """
        )
        fn = module.functions["f"]
        loops = find_natural_loops(fn)
        assert len(loops) == 2
        # Outer first (more blocks).
        assert loops[0].num_blocks > loops[1].num_blocks
        assert loops[1].blocks < loops[0].blocks


class TestLiveness:
    def test_phi_and_loop_liveness(self):
        fn, entry, header, body, exit_, phi, nxt = loopy_fn()
        live = compute_liveness(fn)
        # The argument is live through the loop (used by the header cmp).
        assert fn.args[0] in live.live_out[entry]
        assert fn.args[0] in live.live_out[body]
        # next value is live out of body (feeds the phi edge).
        assert nxt in live.live_out[body]
        # phi is live out of header into both paths.
        assert phi in live.live_in[body] or phi in live.live_out[header]

    def test_dead_value_not_live(self):
        fn = Function("g", FunctionSig((I64,), I64), ["x"])
        b = IRBuilder(fn, fn.add_block("e"))
        dead = b.add(fn.args[0], const_i64(1))
        b.ret(fn.args[0])
        live = compute_liveness(fn)
        assert dead not in live.live_out[fn.entry]


class TestCallGraph:
    def test_edges_and_order(self):
        module = lower(
            """
            int leaf(int x) { return x + 1; }
            int mid(int x) { return leaf(x) * 2; }
            int top(int x) { return mid(x) + leaf(x); }
            int main() { return top(1); }
            """
        )
        graph = CallGraph.build(module)
        assert graph.callees["top"] == {"mid", "leaf"}
        assert graph.callers["leaf"] == {"mid", "top"}
        order = [f.name for f in graph.bottom_up_order()]
        assert order.index("leaf") < order.index("mid") < order.index("top")
        assert order.index("top") < order.index("main")

    def test_self_recursion(self):
        module = lower("int f(int n) { if (n < 1) return 0; return f(n - 1); }")
        graph = CallGraph.build(module)
        assert graph.is_self_recursive("f")

    def test_transitive_closure(self):
        module = lower(
            """
            int a(int x) { return x; }
            int b(int x) { return a(x); }
            int c(int x) { return b(x); }
            """
        )
        graph = CallGraph.build(module)
        assert graph.transitively_called_from("c") == {"a", "b"}


class TestPostDominators:
    def test_diamond_postdoms(self):
        fn = Function("f", FunctionSig((), I64))
        entry, left, right, merge = (
            fn.add_block("entry"),
            fn.add_block("left"),
            fn.add_block("right"),
            fn.add_block("merge"),
        )
        IRBuilder(fn, entry).cbr(const_i1(True), left, right)
        IRBuilder(fn, left).br(merge)
        IRBuilder(fn, right).br(merge)
        IRBuilder(fn, merge).ret(const_i64(0))
        pdt = PostDominatorTree.compute(fn)
        assert pdt.postdominates(merge, entry)
        assert pdt.postdominates(merge, left)
        assert not pdt.postdominates(left, entry)

    def test_control_dependents(self):
        fn = Function("f", FunctionSig((), I64))
        entry, left, right, merge = (
            fn.add_block("entry"),
            fn.add_block("left"),
            fn.add_block("right"),
            fn.add_block("merge"),
        )
        IRBuilder(fn, entry).cbr(const_i1(True), left, right)
        IRBuilder(fn, left).br(merge)
        IRBuilder(fn, right).br(merge)
        IRBuilder(fn, merge).ret(const_i64(0))
        deps = PostDominatorTree.compute(fn).control_dependents()
        assert deps[entry] == {left, right}

    def test_multiple_exits(self):
        fn = Function("f", FunctionSig((), I64))
        entry, a, b = fn.add_block("entry"), fn.add_block("a"), fn.add_block("b")
        IRBuilder(fn, entry).cbr(const_i1(True), a, b)
        IRBuilder(fn, a).ret(const_i64(1))
        IRBuilder(fn, b).ret(const_i64(2))
        pdt = PostDominatorTree.compute(fn)
        assert not pdt.postdominates(a, entry)
        assert pdt.postdominates(a, a)
