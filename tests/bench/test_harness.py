"""Smoke tests for every experiment runner (tiny configurations).

The real experiments run under ``benchmarks/``; these tests assert the
harness machinery produces sane, structurally correct results quickly.
"""

import pytest

from repro.bench.breakdown import pass_breakdown
from repro.bench.correctness import correctness_check
from repro.bench.dormancy import clean_build_dormancy, dormancy_persistence
from repro.bench.endtoend import default_variants, run_edit_trace
from repro.bench.overheads import overhead_report
from repro.bench.projects import project_characteristics
from repro.bench.sweeps import edit_size_sweep, fingerprint_ablation, granularity_ablation
from repro.bench.tables import format_table, geometric_mean


class TestTables:
    def test_format_alignment(self):
        out = format_table(["name", "value"], [["x", 1.5], ["long-name", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "---" in lines[2]
        assert len(lines) == 5

    def test_geomean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([1.0, 0.0, 4.0]) == pytest.approx(2.0)  # zeros ignored


class TestRunners:
    def test_project_characteristics(self):
        rows = project_characteristics(["tiny"], seed=1)
        assert rows[0].preset == "tiny"
        assert rows[0].functions > 0 and rows[0].ir_instructions > 0

    def test_clean_build_dormancy(self):
        rows = clean_build_dormancy("tiny", seed=1)
        assert rows
        for row in rows:
            assert 0 <= row.ratio <= 1
            assert row.dormant <= row.executions

    def test_dormancy_persistence(self):
        result = dormancy_persistence("tiny", num_edits=2, seed=1)
        assert len(result.per_step) == 2
        assert 0 <= result.overall <= 1

    def test_edit_trace(self):
        traces = run_edit_trace("tiny", default_variants(), num_edits=2, seed=1)
        assert set(traces) == {"stateless", "stateful"}
        sf = traces["stateful"]
        assert len(sf.steps) == 2
        assert sf.clean_build_time > 0
        assert traces["stateful"].mean_bypass_ratio > 0

    def test_edit_size_sweep(self):
        points = edit_size_sweep("tiny", sizes=[1, 2], seed=1)
        assert [p.label for p in points] == ["1 functions", "2 functions"]
        for p in points:
            assert p.stateless_work >= p.stateful_work  # bypassing never adds work

    def test_pass_breakdown(self):
        rows = pass_breakdown("tiny", seed=1)
        names = {r.pass_name for r in rows}
        assert "mem2reg" in names and "gvn" in names
        for row in rows:
            assert row.stateful_work <= row.stateless_work

    def test_overheads(self):
        rows = overhead_report(["tiny"], seed=1)
        row = rows[0]
        assert row.state_bytes > 0 and row.state_records > 0
        assert row.fingerprint_count > 0

    def test_correctness_check(self):
        result = correctness_check("tiny", num_edits=2, seed=1)
        assert result.passed, (result.object_mismatches, result.behaviour_mismatches)
        assert result.builds_checked == 3  # clean + 2 edits

    def test_granularity_ablation(self):
        summary = granularity_ablation("tiny", num_edits=2, seed=1)
        assert set(summary) == {
            "none (stateless)",
            "coarse (function-level)",
            "fine (function x pass)",
        }
        fine = summary["fine (function x pass)"]
        none = summary["none (stateless)"]
        assert fine.bypass_ratio > none.bypass_ratio == 0.0
        assert fine.total_work <= none.total_work

    def test_fingerprint_ablation(self):
        summary = fingerprint_ablation("tiny", num_edits=2, seed=1)
        assert set(summary) == {"canonical", "named"}
        # canonical is at least as effective at bypassing
        assert summary["canonical"].bypass_ratio >= summary["named"].bypass_ratio
